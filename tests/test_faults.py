"""Tests for repro.faults — plans, injection, and graceful degradation."""

import math

import numpy as np
import pytest

from repro.batch.application import BatchApplication, simulate_batch
from repro.batch.scheduler import simulate_batch_with_recovery
from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.cluster.simulator import ClusterSimulator
from repro.core.stochastic import StochasticValue
from repro.faults import (
    ALL_LINKS,
    Corruption,
    DeliveryError,
    FaultInjector,
    FaultPlan,
    FaultPlanConfig,
    Outage,
    RetryPolicy,
)
from repro.nws.sensors import Sensor
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.sor.distributed import build_sor_program, simulate_sor
from repro.sor.decomposition import equal_strips
from repro.workload.traces import Trace


def machine(name, rate=100.0, avail=1.0, duration=100_000.0):
    return Machine(
        name=name,
        elements_per_sec=rate,
        availability=Trace.constant(avail, 0.0, duration),
        memory_elements=10**9,
    )


class TestOutage:
    def test_half_open_contains(self):
        o = Outage(10.0, 20.0)
        assert o.contains(10.0) and o.contains(19.999)
        assert not o.contains(20.0) and not o.contains(9.999)
        assert o.duration == 10.0

    def test_overlaps_open_interval(self):
        o = Outage(10.0, 20.0)
        assert o.overlaps(5.0, 11.0) and o.overlaps(19.0, 30.0)
        assert not o.overlaps(0.0, 10.0)  # touching at the edge is no overlap
        assert not o.overlaps(20.0, 30.0)

    def test_overlap_seconds(self):
        o = Outage(10.0, 20.0)
        assert o.overlap_seconds(0.0, 15.0) == 5.0
        assert o.overlap_seconds(12.0, 18.0) == 6.0
        assert o.overlap_seconds(25.0, 30.0) == 0.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Outage(5.0, 5.0)
        with pytest.raises(ValueError):
            Outage(float("nan"), 5.0)


class TestCorruption:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            Corruption(time=1.0, kind="gamma-ray")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Corruption(time=1.0, kind="late", delay=-1.0)


class TestFaultPlanConfig:
    def test_default_is_null(self):
        assert FaultPlanConfig().is_null

    def test_any_rate_breaks_null(self):
        assert not FaultPlanConfig(machine_crash_rate=0.01).is_null

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlanConfig(corruption_kinds=("nan", "bogus"))


class TestFaultPlanGeneration:
    def test_null_config_generates_empty_plan(self):
        plan = FaultPlan.generate(
            FaultPlanConfig(), resources=["a"], machines=["m"], links=[], horizon=1000.0, rng=0
        )
        assert plan.is_empty
        assert plan == FaultPlan.none()

    def test_same_seed_same_fingerprint(self):
        cfg = FaultPlanConfig(
            sensor_dropout_rate=0.01, machine_crash_rate=0.005, corruption_rate=0.02
        )
        kw = dict(resources=["r1", "r2"], machines=["m1", "m2"], links=[], horizon=2000.0)
        a = FaultPlan.generate(cfg, rng=42, **kw)
        b = FaultPlan.generate(cfg, rng=42, **kw)
        assert a.fingerprint() == b.fingerprint()
        assert a == b and hash(a) == hash(b)

    def test_different_seed_different_schedule(self):
        cfg = FaultPlanConfig(sensor_dropout_rate=0.05)
        kw = dict(resources=["r"], machines=[], links=[], horizon=5000.0)
        a = FaultPlan.generate(cfg, rng=1, **kw)
        b = FaultPlan.generate(cfg, rng=2, **kw)
        assert a.fingerprint() != b.fingerprint()

    def test_entity_order_irrelevant(self):
        cfg = FaultPlanConfig(sensor_dropout_rate=0.02, machine_crash_rate=0.01)
        a = FaultPlan.generate(
            cfg, resources=["x", "y"], machines=["p", "q"], links=[], horizon=3000.0, rng=9
        )
        b = FaultPlan.generate(
            cfg, resources=["y", "x"], machines=["q", "p"], links=[], horizon=3000.0, rng=9
        )
        assert a.fingerprint() == b.fingerprint()

    def test_windows_sorted_and_disjoint_per_entity(self):
        plan = FaultPlan.generate(
            FaultPlanConfig(machine_crash_rate=0.05, machine_restart_mean=10.0),
            resources=[],
            machines=["m"],
            links=[],
            horizon=10_000.0,
            rng=3,
        )
        windows = plan.machine_crashes["m"]
        assert len(windows) > 5
        for prev, cur in zip(windows, windows[1:]):
            assert prev.end <= cur.start

    def test_horizon_bounds_starts(self):
        plan = FaultPlan.generate(
            FaultPlanConfig(sensor_dropout_rate=0.1),
            resources=["r"],
            machines=[],
            links=[],
            horizon=500.0,
            rng=7,
        )
        assert all(o.start < 500.0 for o in plan.sensor_dropouts["r"])


class TestFaultPlanQueries:
    def plan(self):
        return FaultPlan(
            sensor_dropouts={"r": (Outage(10.0, 20.0),)},
            machine_crashes={"m": (Outage(100.0, 150.0), Outage(300.0, 310.0))},
            link_outages={("b", "a"): (Outage(5.0, 6.0),), ALL_LINKS: (Outage(50.0, 55.0),)},
            corruptions={"r": (Corruption(time=2.0, kind="nan"),)},
        )

    def test_sensor_down(self):
        p = self.plan()
        assert p.sensor_down("r", 15.0) and not p.sensor_down("r", 25.0)
        assert not p.sensor_down("other", 15.0)

    def test_machine_down_and_next_up(self):
        p = self.plan()
        assert p.machine_down("m", 120.0)
        assert p.next_machine_up("m", 120.0) == 150.0
        assert p.next_machine_up("m", 99.0) == 99.0

    def test_link_key_is_unordered(self):
        p = self.plan()
        assert p.link_down("a", "b", 5.5) and p.link_down("b", "a", 5.5)

    def test_all_links_partition(self):
        p = self.plan()
        assert p.link_down("x", "y", 52.0)
        assert not p.link_down("x", "y", 60.0)

    def test_first_crash_overlapping(self):
        p = self.plan()
        hit = p.first_crash_overlapping("m", 90.0, 105.0)
        assert hit is not None and hit.start == 100.0
        assert p.first_crash_overlapping("m", 160.0, 290.0) is None

    def test_machine_downtime(self):
        p = self.plan()
        assert p.machine_downtime("m", 0.0, 400.0) == pytest.approx(60.0)
        assert p.machine_downtime("m", 125.0, 305.0) == pytest.approx(30.0)


class TestTraceMasked:
    def test_masking_zeroes_window(self):
        t = Trace.constant(0.8, 0.0, 100.0)
        m = t.masked([(10.0, 20.0)], 0.0)
        assert m.value_at(15.0) == 0.0
        assert m.value_at(5.0) == 0.8
        assert m.value_at(25.0) == 0.8

    def test_clamp_beyond_end_restores_value(self):
        t = Trace.constant(0.8, 0.0, 100.0)
        m = t.masked([(90.0, 150.0)], 0.0)
        assert m.value_at(120.0) == 0.0
        assert m.value_at(10_000.0) == 0.8  # clamp never sticks at zero

    def test_bad_window_rejected(self):
        t = Trace.constant(1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            t.masked([(5.0, 5.0)], 0.0)


class TestRetryPolicy:
    def test_backoff_schedule(self):
        r = RetryPolicy(timeout=5.0, backoff=2.0, max_attempts=4)
        assert [r.retry_delay(k) for k in (1, 2, 3)] == [5.0, 10.0, 20.0]
        assert r.max_retry_horizon == 35.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestFaultInjectorCompute:
    def test_crash_pauses_work(self):
        # 1000 elements at 100 elt/s = 10 s of work; crash [5, 15) pauses it.
        inj = FaultInjector(FaultPlan(machine_crashes={"m": (Outage(5.0, 15.0),)}))
        finish = inj.compute_finish(machine("m"), 1000.0, 0.0)
        assert finish == pytest.approx(20.0)

    def test_no_crash_matches_plain_machine(self):
        inj = FaultInjector(FaultPlan.none())
        m = machine("m")
        assert inj.compute_finish(m, 1234.0, 3.0) == m.compute_finish(1234.0, 3.0)


class TestFaultInjectorDeliver:
    def test_outage_forces_retries(self):
        plan = FaultPlan(link_outages={ALL_LINKS: (Outage(0.0, 8.0),)})
        inj = FaultInjector(plan, retry=RetryPolicy(timeout=5.0, backoff=2.0, max_attempts=6))
        arrive = inj.deliver(Network(), "a", "b", 1000.0, 0.0)
        # Attempts at t=0 and t=5 fail (outage), t=15 succeeds.
        assert arrive > 15.0
        assert inj.message_retries == 2
        assert inj.messages_failed == 0

    def test_exhausted_budget_raises(self):
        plan = FaultPlan(link_outages={ALL_LINKS: (Outage(0.0, 10_000.0),)})
        inj = FaultInjector(plan, retry=RetryPolicy(timeout=1.0, backoff=2.0, max_attempts=3))
        with pytest.raises(DeliveryError):
            inj.deliver(Network(), "a", "b", 100.0, 0.0)
        assert inj.messages_failed == 1

    def test_healthy_delivery_untouched(self):
        inj = FaultInjector(FaultPlan.none())
        net = Network()
        assert inj.deliver(net, "a", "b", 500.0, 1.0) == net.transfer_finish("a", "b", 500.0, 1.0)
        assert inj.message_retries == 0


class TestSensorUnderFaults:
    def trace(self):
        return Trace.constant(0.5, 0.0, 10_000.0)

    def test_dropout_window_skips_samples(self):
        plan = FaultPlan(sensor_dropouts={"cpu": (Outage(10.0, 21.0),)})
        s = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=plan)
        s.advance_to(30.0)
        # Samples at 10, 15, 20 fall in the window.
        assert s.missed_samples == 3
        assert s.series.times().tolist() == [0.0, 5.0, 25.0, 30.0]

    def test_nan_corruption_rejected_and_counted(self):
        plan = FaultPlan(corruptions={"cpu": (Corruption(time=4.0, kind="nan"),)})
        s = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=plan)
        s.advance_to(20.0)
        assert s.corrupt_samples == 1
        assert np.isfinite(s.series.values()).all()
        assert 5.0 not in s.series.times()

    def test_duplicate_corruption_delivers_twice(self):
        plan = FaultPlan(corruptions={"cpu": (Corruption(time=4.0, kind="duplicate"),)})
        s = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=plan)
        s.advance_to(20.0)
        assert s.duplicate_samples == 1
        assert s.series.times().tolist().count(5.0) == 2

    def test_late_sample_arrives_at_delivery_time(self):
        plan = FaultPlan(
            corruptions={"cpu": (Corruption(time=4.0, kind="late", delay=12.0),)}
        )
        s = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=plan)
        s.advance_to(10.0)
        # The t=5 sample is pending until t=17; series holds 0 and 10 only.
        assert s.late_samples == 1
        assert 5.0 not in [round(x, 6) for x in s.series.times()]
        s.advance_to(20.0)
        assert 17.0 in s.series.times()

    def test_staleness_accounts_for_gaps(self):
        plan = FaultPlan(sensor_dropouts={"cpu": (Outage(4.0, 100.0),)})
        s = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=plan)
        s.advance_to(90.0)
        assert s.staleness(90.0) == pytest.approx(90.0)

    def test_no_faults_is_bit_identical(self):
        clean = Sensor(resource="cpu", trace=self.trace(), period=5.0)
        nulled = Sensor(resource="cpu", trace=self.trace(), period=5.0, faults=FaultPlan.none())
        clean.advance_to(500.0)
        nulled.advance_to(500.0)
        np.testing.assert_array_equal(clean.series.values(), nulled.series.values())
        np.testing.assert_array_equal(clean.series.times(), nulled.series.times())


class TestDegradationPolicy:
    def test_fresh_untouched(self):
        p = DegradationPolicy(staleness_threshold=15.0)
        base = StochasticValue(2.0, 0.5)
        assert p.widen(base, 10.0) is base

    def test_widening_monotone_in_staleness(self):
        p = DegradationPolicy(staleness_threshold=15.0, staleness_penalty=0.02)
        base = StochasticValue(2.0, 0.5)
        spreads = [p.widen(base, s).spread for s in (20.0, 60.0, 120.0, 600.0)]
        assert spreads == sorted(spreads)
        assert len(set(spreads)) == len(spreads)  # strictly increasing
        assert all(sp > base.spread for sp in spreads)

    def test_mean_preserved(self):
        p = DegradationPolicy()
        base = StochasticValue(3.0, 0.1)
        assert p.widen(base, 1e4).mean == 3.0

    def test_fallback_before_threshold_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(staleness_threshold=100.0, fallback_after=50.0)


class TestServiceDegradation:
    def make(self, *, dropout_from=600.0, policy=None):
        plan = FaultPlan(sensor_dropouts={"cpu:a": (Outage(dropout_from, 1e7),)})
        nws = NetworkWeatherService(
            degradation=policy if policy is not None else DegradationPolicy(),
            faults=plan,
        )
        nws.register("cpu:a", Trace.constant(0.5, 0.0, 1e7))
        return nws

    def test_fresh_quality_with_recent_data(self):
        nws = self.make()
        q = nws.query_qualified("cpu:a", t=300.0)
        assert q.quality == "fresh" and not q.is_degraded
        assert q.staleness <= 15.0

    def test_stale_quality_widens(self):
        nws = self.make()
        fresh = nws.query_qualified("cpu:a", t=590.0).value
        q = nws.query_qualified("cpu:a", t=700.0)
        assert q.quality == "stale" and q.is_degraded
        assert q.value.spread > fresh.spread
        assert q.value.mean == fresh.mean

    def test_widening_monotone_over_time(self):
        nws = self.make()
        widths = []
        for t in (650.0, 700.0, 800.0):
            widths.append(nws.query_qualified("cpu:a", t=t).value.spread)
        assert widths == sorted(widths) and widths[0] < widths[-1]

    def test_fallback_after_long_silence(self):
        prior = StochasticValue(0.4, 0.2)
        nws = self.make(policy=DegradationPolicy(fallback_after=120.0, prior=prior))
        q = nws.query_qualified("cpu:a", t=2000.0)
        assert q.quality == "fallback"
        assert q.value.mean == prior.mean
        assert q.value.spread > prior.spread

    def test_silent_resource_with_prior_never_raises(self):
        plan = FaultPlan(sensor_dropouts={"cpu:a": (Outage(0.0, 1e7),)})
        nws = NetworkWeatherService(
            degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.3)), faults=plan
        )
        nws.register("cpu:a", Trace.constant(0.5, 0.0, 1e7))
        q = nws.query_qualified("cpu:a", t=100.0)
        assert q.quality == "fallback" and math.isinf(q.staleness)

    def test_silent_resource_without_prior_uses_last_resort(self):
        from repro.nws.service import LAST_RESORT_FORECAST

        plan = FaultPlan(sensor_dropouts={"cpu:a": (Outage(0.0, 1e7),)})
        nws = NetworkWeatherService(degradation=DegradationPolicy(), faults=plan)
        nws.register("cpu:a", Trace.constant(0.5, 0.0, 1e7))
        q = nws.query_qualified("cpu:a", t=100.0)
        assert q.quality == "fallback" and math.isinf(q.staleness)
        assert q.value == LAST_RESORT_FORECAST

    def test_all_measurements_nan_rejected_falls_back(self):
        # Regression: a resource whose *every* reading was NaN-rejected
        # has an empty series; a qualified query under serving load must
        # answer with a fallback-quality forecast, never raise.
        events = tuple(Corruption(time=i * 5.0, kind="nan") for i in range(200))
        plan = FaultPlan(corruptions={"cpu:a": events})
        nws = NetworkWeatherService(degradation=DegradationPolicy(), faults=plan)
        nws.register("cpu:a", Trace.constant(0.5, 0.0, 1e7))
        q = nws.query_qualified("cpu:a", t=900.0)
        assert q.quality == "fallback"
        assert nws.health()["cpu:a"]["corrupt"] > 0
        assert nws.health()["cpu:a"]["delivered"] == 0

    def test_health_reports_counters(self):
        nws = self.make()
        nws.advance_to(700.0)
        h = nws.health()["cpu:a"]
        assert h["missed"] > 0 and h["staleness"] > 50.0 and h["delivered"] > 0

    def test_query_matches_qualified_value(self):
        nws = self.make()
        assert nws.query("cpu:a", t=700.0) == nws.query_qualified("cpu:a").value


class TestSimulatorUnderFaults:
    def cluster(self, plan=None):
        ms = [machine("m0"), machine("m1")]
        return ms, ClusterSimulator(ms, Network(), faults=plan)

    def program(self, iterations=3):
        return build_sor_program(100, equal_strips(100, 2), iterations)

    def test_null_plan_bit_identical(self):
        ms, sim_faulted = self.cluster(FaultPlan.none())
        sim_clean = ClusterSimulator(ms, Network())
        prog = self.program()
        a = sim_clean.run(prog)
        b = sim_faulted.run(prog)
        assert a.end == b.end
        assert a.phase_time == b.phase_time
        assert b.message_retries == 0 and b.machine_downtime == 0.0

    def test_crash_delays_and_reports_downtime(self):
        prog = self.program()
        ms, clean = self.cluster()
        base = clean.run(prog)
        plan = FaultPlan(machine_crashes={"m0": (Outage(base.start, base.start + 2.0),)})
        _, sim = self.cluster(plan)
        out = sim.run(prog)
        assert out.end > base.end
        assert out.machine_downtime == pytest.approx(2.0)

    def test_simulate_sor_accepts_plan(self):
        ms = [machine("m0"), machine("m1")]
        clean = simulate_sor(ms, Network(), 100, 3)
        # Knock the segment out exactly around the first ghost-row exchange.
        prog = build_sor_program(100, equal_strips(100, 2), 3)
        first_comm = ms[0].compute_finish(prog.phases[0].work[0], 0.0)
        plan = FaultPlan(
            link_outages={ALL_LINKS: (Outage(first_comm - 0.5, first_comm + 1.0),)}
        )
        out = simulate_sor(ms, Network(), 100, 3, faults=plan)
        assert out.message_retries > 0
        assert out.elapsed > clean.elapsed


class TestBatchRecovery:
    def setup_method(self):
        self.machines = [machine("a"), machine("b"), machine("c")]
        self.app = BatchApplication(total_units=30, elements_per_unit=100.0)

    def test_null_plan_matches_simulate_batch(self):
        rec = simulate_batch_with_recovery(
            self.machines, self.app, [10, 10, 10], faults=FaultPlan.none()
        )
        plain = simulate_batch(self.machines, self.app, [10, 10, 10])
        assert rec.makespan == plain.makespan
        assert rec.rescheduled_units == 0
        assert rec.executed_units == (10, 10, 10)

    def test_crash_reschedules_onto_survivors(self):
        plan = FaultPlan(machine_crashes={"b": (Outage(3.0, 500.0),)})
        rec = simulate_batch_with_recovery(self.machines, self.app, [10, 10, 10], faults=plan)
        assert sum(rec.executed_units) == 30
        assert rec.rescheduled_units > 0
        assert rec.executed_units[1] < 10  # b lost work
        assert len(rec.reschedules) == 1
        ev = rec.reschedules[0]
        assert ev.source == "b" and ev.time == 3.0
        assert all(name in ("a", "c") for name, _ in ev.targets)

    def test_total_outage_waits_for_restart(self):
        plan = FaultPlan(
            machine_crashes={
                "a": (Outage(1.0, 50.0),),
                "b": (Outage(1.0, 60.0),),
                "c": (Outage(1.0, 70.0),),
            }
        )
        rec = simulate_batch_with_recovery(self.machines, self.app, [10, 10, 10], faults=plan)
        assert sum(rec.executed_units) == 30
        assert rec.makespan > 49.0  # nothing can finish before the first restart

    def test_bad_allocation_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch_with_recovery(
                self.machines, self.app, [10, 10], faults=FaultPlan.none()
            )
        with pytest.raises(ValueError):
            simulate_batch_with_recovery(
                self.machines, self.app, [10, 10, 11], faults=FaultPlan.none()
            )
