"""Tests for trace-driven platform replay (platform_from_traces)."""

import numpy as np
import pytest

from repro.sor.distributed import simulate_sor
from repro.workload.io import load_traces_npz, save_traces_npz
from repro.workload.platforms import MACHINE_RATES, platform2, platform_from_traces
from repro.workload.traces import Trace


class TestPlatformFromTraces:
    def test_basic_construction(self):
        traces = {"a": Trace.constant(0.5), "b": Trace.constant(1.0)}
        plat = platform_from_traces(traces, rates={"a": 1e5, "b": 2e5})
        assert plat.names == ("a", "b")
        assert plat.machines[0].availability.value_at(10.0) == 0.5

    def test_kinds_lookup(self):
        traces = {"x": Trace.constant(1.0)}
        plat = platform_from_traces(traces, kinds={"x": "sparc5"})
        assert plat.machines[0].elements_per_sec == MACHINE_RATES["sparc5"]

    def test_missing_rate_rejected(self):
        with pytest.raises(ValueError, match="no rate or kind"):
            platform_from_traces({"a": Trace.constant(1.0)}, rates={"b": 1e5})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            platform_from_traces({})

    def test_bandwidth_trace_attached(self):
        plat = platform_from_traces(
            {"a": Trace.constant(1.0)},
            rates={"a": 1e5},
            bandwidth_trace=Trace.constant(0.25),
        )
        assert plat.network.default_segment.availability.value_at(0.0) == 0.25

    def test_duration_is_shortest_trace(self):
        traces = {
            "a": Trace.from_samples(0.0, 5.0, [1.0] * 10),
            "b": Trace.from_samples(0.0, 5.0, [1.0] * 4),
        }
        plat = platform_from_traces(traces, rates={"a": 1e5, "b": 1e5})
        assert plat.duration == 20.0


class TestRoundTripReproducibility:
    def test_saved_platform_reproduces_executions(self, tmp_path):
        # Save a generated platform's traces, reload, and verify the
        # simulated execution is identical.
        original = platform2(duration=1200.0, rng=31)
        payload = {m.name: m.availability for m in original.machines}
        payload["__net__"] = original.network.default_segment.availability
        path = save_traces_npz(payload, tmp_path / "platform.npz")

        loaded = load_traces_npz(path)
        net_trace = loaded.pop("__net__")
        kinds = {
            "sparc5": "sparc5",
            "sparc10": "sparc10",
            "ultra-1": "ultrasparc",
            "ultra-2": "ultrasparc",
        }
        replayed = platform_from_traces(loaded, kinds=kinds, bandwidth_trace=net_trace)

        a = simulate_sor(original.machines, original.network, 800, 10, start_time=300.0)
        # Machine order may differ (dict round-trip sorts); rebuild in
        # original order for the comparison.
        order = {m.name: m for m in replayed.machines}
        machines = [order[m.name] for m in original.machines]
        b = simulate_sor(machines, replayed.network, 800, 10, start_time=300.0)
        assert b.elapsed == pytest.approx(a.elapsed, rel=1e-12)
        np.testing.assert_allclose(b.iteration_ends, a.iteration_ends)
