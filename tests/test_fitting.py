"""Tests for repro.distributions.fitting — normal fits and diagnostics."""

import numpy as np
import pytest

from repro.distributions.fitting import fit_normal, jarque_bera, ks_distance_to_normal


class TestFitNormal:
    def test_recovers_parameters(self):
        rng = np.random.default_rng(0)
        data = rng.normal(11.0, 1.4, 20_000)
        fit = fit_normal(data)
        assert fit.value.mean == pytest.approx(11.0, abs=0.05)
        assert fit.value.spread == pytest.approx(2.8, abs=0.1)
        assert fit.n == 20_000

    def test_normal_data_looks_normal(self):
        rng = np.random.default_rng(1)
        fit = fit_normal(rng.normal(0, 1, 3000))
        assert fit.looks_normal()
        assert fit.ks_distance < 0.03
        assert abs(fit.skewness) < 0.15

    def test_long_tailed_data_flagged(self):
        rng = np.random.default_rng(2)
        data = rng.lognormal(0, 1.0, 3000)
        fit = fit_normal(data)
        assert not fit.looks_normal()
        assert fit.skewness > 1.0
        assert fit.jb_statistic > 100.0

    def test_constant_data_degenerates_to_point(self):
        fit = fit_normal([5.0] * 10)
        assert fit.value.is_point
        assert fit.ks_distance == 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_normal([1.0, 2.0, 3.0])


class TestKsDistance:
    def test_zero_for_perfect_grid(self):
        # A fine quantile grid of the normal has tiny KS distance.
        from scipy import stats as sps

        ps = (np.arange(10_000) + 0.5) / 10_000
        data = sps.norm.ppf(ps)
        assert ks_distance_to_normal(data, 0.0, 1.0) < 1e-3

    def test_large_for_shifted(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, 2000)
        assert ks_distance_to_normal(data, 3.0, 1.0) > 0.8

    def test_matches_scipy_kstest(self):
        from scipy import stats as sps

        rng = np.random.default_rng(4)
        data = rng.normal(2, 3, 500)
        ours = ks_distance_to_normal(data, 2.0, 3.0)
        theirs = sps.kstest(data, "norm", args=(2.0, 3.0)).statistic
        # Our vectorised erf approximation is good to ~1.5e-7.
        assert ours == pytest.approx(theirs, abs=1e-6)

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            ks_distance_to_normal([1.0, 2.0], 0.0, 0.0)


class TestJarqueBera:
    def test_small_for_normal(self):
        rng = np.random.default_rng(5)
        assert jarque_bera(rng.normal(0, 1, 5000)) < 10.0

    def test_large_for_uniform(self):
        rng = np.random.default_rng(6)
        assert jarque_bera(rng.random(5000)) > 100.0

    def test_needs_four_samples(self):
        with pytest.raises(ValueError):
            jarque_bera([1.0, 2.0, 3.0])
