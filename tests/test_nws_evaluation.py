"""Tests for repro.nws.evaluation — forecast calibration assessment."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.nws.evaluation import calibrate_one_step, calibrate_query
from repro.workload.loadgen import bursty_trace, single_mode_trace
from repro.workload.modes import PLATFORM1_MODES, PLATFORM2_MODES


class TestOneStep:
    def test_stationary_series_well_calibrated(self):
        rng = np.random.default_rng(0)
        values = 0.5 + rng.normal(0, 0.05, 1500)
        report = calibrate_one_step(values)
        assert 0.85 <= report.coverage <= 1.0
        assert report.n == 1500 - 50

    def test_single_mode_trace_well_calibrated(self):
        trace = single_mode_trace(PLATFORM1_MODES.modes[1], 7200.0, rng=1)
        report = calibrate_one_step(trace.values)
        assert report.coverage >= 0.75

    def test_mae_positive(self):
        rng = np.random.default_rng(2)
        report = calibrate_one_step(rng.random(300))
        assert report.mae > 0

    def test_burn_in_validated(self):
        with pytest.raises(ValueError):
            calibrate_one_step([1.0, 2.0], burn_in=0)

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            calibrate_one_step([1.0] * 10, burn_in=50)

    def test_summary_string(self):
        rng = np.random.default_rng(3)
        report = calibrate_one_step(rng.random(200))
        assert "coverage=" in report.summary()

    def test_calibration_gap_sign(self):
        rng = np.random.default_rng(4)
        report = calibrate_one_step(0.5 + rng.normal(0, 0.01, 1000))
        assert report.calibration_gap == pytest.approx(
            report.coverage - report.nominal
        )


class TestQueryCalibration:
    def window_query(self, window):
        return StochasticValue.from_samples(window)

    def test_window_query_on_bursty_series(self):
        trace = bursty_trace(PLATFORM2_MODES, 14_400.0, rng=5)
        report = calibrate_query(trace.values, self.window_query, history=18, horizon=12)
        # The windowed query is the Platform 2 predictor; it must be
        # broadly calibrated on its own regime.
        assert report.coverage >= 0.6
        assert report.sharpness > 0

    def test_longer_history_wider_and_safer(self):
        trace = bursty_trace(PLATFORM2_MODES, 14_400.0, rng=6)
        short = calibrate_query(trace.values, self.window_query, history=6, horizon=12)
        long = calibrate_query(trace.values, self.window_query, history=60, horizon=12)
        assert long.sharpness > short.sharpness
        assert long.coverage >= short.coverage

    def test_point_query_has_zero_coverage_on_noise(self):
        rng = np.random.default_rng(7)
        values = rng.normal(0.5, 0.1, 500)
        report = calibrate_query(
            values, lambda w: StochasticValue.point(float(w.mean())), history=20, horizon=5
        )
        assert report.coverage < 0.05

    def test_args_validated(self):
        with pytest.raises(ValueError):
            calibrate_query([1.0] * 100, self.window_query, history=1)
        with pytest.raises(ValueError):
            calibrate_query([1.0] * 100, self.window_query, horizon=0)

    def test_no_scorable_forecasts_rejected(self):
        with pytest.raises(ValueError):
            calibrate_query([1.0] * 10, self.window_query, history=8, horizon=5)
