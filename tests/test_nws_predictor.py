"""Tests for repro.nws.predictor — adaptive forecaster selection."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.nws.forecasters import LastValue, RunningMean, SlidingWindowMean
from repro.nws.predictor import AdaptivePredictor


class TestScoring:
    def test_scores_are_out_of_sample(self):
        # The first observation can't be scored (no prior prediction).
        p = AdaptivePredictor([LastValue()])
        p.observe(1.0)
        assert p.scores() == []
        p.observe(2.0)
        s = p.scores()[0]
        assert s.n_scored == 1
        assert s.mae == pytest.approx(1.0)  # predicted 1.0, saw 2.0

    def test_best_picks_lowest_mae(self):
        p = AdaptivePredictor([LastValue(), RunningMean()])
        # Trending series: last-value beats the global mean.
        for v in np.linspace(0.0, 10.0, 50):
            p.observe(float(v))
        assert p.best().name == "last_value"

    def test_mean_wins_on_noise_around_constant(self):
        rng = np.random.default_rng(0)
        p = AdaptivePredictor([LastValue(), SlidingWindowMean(32)])
        for v in 5.0 + rng.normal(0, 1.0, 300):
            p.observe(float(v))
        assert p.best().name == "mean_w32"

    def test_scores_sorted_by_mae(self):
        rng = np.random.default_rng(1)
        p = AdaptivePredictor()
        for v in rng.random(100):
            p.observe(float(v))
        maes = [s.mae for s in p.scores()]
        assert maes == sorted(maes)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePredictor([LastValue(), LastValue()])

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePredictor([])

    def test_invalid_error_window_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePredictor(error_window=1)

    def test_invalid_spread_method_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePredictor(spread_method="variance")


class TestForecast:
    def test_forecast_before_data_rejected(self):
        with pytest.raises(RuntimeError):
            AdaptivePredictor().forecast()

    def test_forecast_is_stochastic_value(self):
        p = AdaptivePredictor()
        p.observe_series([1.0, 1.1, 0.9, 1.0, 1.05])
        out = p.forecast()
        assert isinstance(out, StochasticValue)

    def test_spread_reflects_noise_level(self):
        rng = np.random.default_rng(2)
        quiet, noisy = AdaptivePredictor(), AdaptivePredictor()
        quiet.observe_series(5.0 + rng.normal(0, 0.01, 200))
        noisy.observe_series(5.0 + rng.normal(0, 1.0, 200))
        assert noisy.forecast().spread > 10 * quiet.forecast().spread

    def test_forecast_tracks_level(self):
        rng = np.random.default_rng(3)
        p = AdaptivePredictor()
        p.observe_series(0.48 + rng.normal(0, 0.02, 300))
        out = p.forecast()
        assert out.mean == pytest.approx(0.48, abs=0.03)
        assert out.contains(0.48)

    def test_rmse_spread_at_least_mad_spread_on_bursty(self):
        rng = np.random.default_rng(4)
        series = np.concatenate(
            [0.9 + rng.normal(0, 0.02, 100), 0.2 + rng.normal(0, 0.02, 5)]
        )
        a = AdaptivePredictor(spread_method="rmse")
        b = AdaptivePredictor(spread_method="mad")
        a.observe_series(series)
        b.observe_series(series)
        assert a.forecast().spread > b.forecast().spread

    def test_n_observations(self):
        p = AdaptivePredictor()
        p.observe_series([1.0, 2.0, 3.0])
        assert p.n_observations == 3
