"""Tests for repro.cli — the artifact-regeneration command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["platform2"])
        assert args.size == 1600 and args.runs == 25 and args.seed == 42


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Dedicated" in out and "12 +/- 30%" in out

    def test_table1_custom_units(self, capsys):
        assert main(["table1", "--units", "60"]) == 0
        assert "split of 60" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2", "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "add (related)" in out and "paper-literal" in out

    def test_dedicated_exit_code_reflects_claim(self, capsys):
        assert main(["dedicated", "--sizes", "1000", "1600"]) == 0
        out = capsys.readouterr().out
        assert "max error" in out

    def test_figures_selection(self, capsys):
        assert main(["figures", "--which", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figures 3/4" not in out

    def test_figures_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figures 1/2" in out and "Figures 3/4" in out and "Figure 5" in out

    def test_platform1_small(self, capsys):
        assert main(["platform1", "--sizes", "1000", "1400", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "capture=" in out and "preliminary stochastic load" in out

    def test_platform2_small(self, capsys):
        assert main(["platform2", "--size", "1000", "--runs", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "capture=" in out and "in_range" in out

    def test_trace_renders_ascii(self, capsys):
        assert main(["trace", "--platform", "2", "--duration", "600"]) == 0
        out = capsys.readouterr().out
        assert "platform 2 load" in out
        assert "*" in out

    def test_trace_pipeline_exports(self, capsys, tmp_path):
        import json

        json_out = tmp_path / "trace.json"
        chrome_out = tmp_path / "trace_chrome.json"
        assert main([
            "trace", "--pipeline",
            "--json-out", str(json_out),
            "--chrome-out", str(chrome_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "traced server run (seed 7)" in out
        assert "spans" in out
        doc = json.loads(json_out.read_text())
        assert doc["format"] == "repro.obs/v1"
        assert doc["summary"]["spans"] > 0
        chrome = json.loads(chrome_out.read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_figures_plot_flag(self, capsys):
        assert main(["figures", "--which", "5", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "CPU load histogram" in out

    def test_memory_command(self, capsys):
        assert main(["memory", "--sizes", "800", "1200"]) == 0
        out = capsys.readouterr().out
        assert "Memory boundary" in out and "NO" in out

    def test_calibration_command(self, capsys):
        assert main(["calibration", "--windows", "45"]) == 0
        out = capsys.readouterr().out
        assert "bursty" in out and "coverage" in out

    def test_advise_command(self, capsys):
        assert main(["advise", "--size", "800", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "advice:" in out and "mean-balanced" in out

    def test_chaos_command(self, capsys):
        assert main(["chaos", "--size", "400", "--iterations", "5", "--seed", "23"]) == 0
        out = capsys.readouterr().out
        assert "fault plan" in out and "NWS under faults" in out
        assert "degraded stochastic prediction" in out
        assert "quality" in out

    def test_serve_closed_loop(self, capsys):
        assert main(["serve", "--requests", "60", "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "submitted=60" in out and "errors=0" in out
        assert "server counters" in out and "responses_ok" in out

    def test_serve_open_loop_overload_sheds(self, capsys):
        assert main([
            "serve", "--rate", "3000", "--duration", "2",
            "--max-queue", "32", "--clients", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue_full" in out and "errors=0" in out

    def test_serve_json_snapshot(self, capsys):
        import json

        assert main(["serve", "--requests", "20", "--clients", "2", "--json"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out[out.index("{"):])
        assert snapshot["metrics"]["counters"]["responses_ok"] == 20

    def test_bench_serve_gate(self, capsys):
        assert main([
            "bench-serve", "--requests", "128", "--clients", "16",
            "--ref-divisor", "8", "--min-speedup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "reference" in out
        assert "wall throughput" in out

    def test_chaos_command_zero_rates_is_healthy(self, capsys):
        assert main([
            "chaos", "--size", "400", "--iterations", "5",
            "--dropout-rate", "0", "--crash-rate", "0",
            "--outage-rate", "0", "--corruption-rate", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "dropout_windows=0" in out
        assert "fresh" in out and "stale" not in out.replace("stale_s", "")

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("diurnal-wave", "flash-crowd", "hot-shard", "rack-failure"):
            assert name in out

    def test_scenarios_custom_yaml_run(self, capsys, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "tiny.yaml"
        path.write_text(yaml.safe_dump({
            "name": "tiny",
            "seed": 5,
            "duration": 5.0,
            "clients": 4,
            "arrival": {"kind": "constant", "rate": 40.0},
            "cluster": {"workers": 2},
            "invariants": {
                "max_p99": 6.0, "latency_slo": 2.0,
                "disturbance_end": 5.0, "recovery_within": 15.0,
            },
        }))
        assert main(["scenarios", "--scenario", str(path), "--policy", "static"]) == 0
        out = capsys.readouterr().out
        assert "tiny [static]" in out and "PASS" in out
