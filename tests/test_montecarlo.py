"""Tests for repro.structural.montecarlo — exact propagation vs closed form."""

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.core import StochasticValue
from repro.sor.decomposition import equal_strips
from repro.structural.expr import Param
from repro.structural.montecarlo import (
    ClipSaturationWarning,
    compare_with_closed_form,
    monte_carlo_predict,
    monte_carlo_predict_reference,
)
from repro.structural.parameters import Bindings
from repro.structural.sor_model import SORModel, bindings_for_platform


def simple_bindings():
    b = Bindings()
    b.bind("c", 10.0)
    b.bind_runtime("load", StochasticValue(0.5, 0.1))
    return b


class TestMonteCarloPredict:
    def test_point_parameters_give_constant(self):
        b = Bindings({"x": 3.0, "y": 4.0})
        out = monte_carlo_predict(Param("x") * Param("y"), b, n_samples=50, rng=0)
        assert np.all(out.samples == 12.0)

    def test_linear_expression_matches_closed_form(self):
        b = Bindings()
        b.bind_runtime("x", StochasticValue(10.0, 2.0))
        expr = Param("x") * 3.0 + 5.0
        mc = monte_carlo_predict(expr, b, n_samples=50_000, rng=1)
        assert mc.mean == pytest.approx(35.0, rel=0.01)
        assert mc.spread == pytest.approx(6.0, rel=0.03)

    def test_division_shows_jensen_bias(self):
        expr = Param("c") / Param("load")
        mc = monte_carlo_predict(simple_bindings(), n_samples=0) if False else None
        mc = monte_carlo_predict(expr, simple_bindings(), n_samples=50_000, rng=2)
        # E[c/load] > c / E[load] for positive-variance load.
        assert mc.mean > 10.0 / 0.5

    def test_only_runtime_parameters_sampled(self):
        b = Bindings()
        b.bind("fixed", StochasticValue(5.0, 4.0))  # compile-time: not sampled
        b.bind_runtime("x", StochasticValue(1.0, 0.0))  # point: not sampled
        expr = Param("fixed") + Param("x")
        mc = monte_carlo_predict(expr, b, n_samples=100, rng=3)
        # With nothing sampled, the expression evaluates at the means.
        assert np.all(mc.samples == 6.0)

    def test_clip_keeps_divisor_positive(self):
        b = Bindings()
        b.bind_runtime("load", StochasticValue(0.1, 0.4))  # draws can go negative
        expr = Param("c") / Param("load")
        b.bind("c", 1.0)
        mc = monte_carlo_predict(
            expr, b, n_samples=20_000, rng=4, clip={"load": (0.02, 1.0)}
        )
        assert np.all(np.isfinite(mc.samples))
        assert np.all(mc.samples > 0)

    def test_deterministic_under_seed(self):
        expr = Param("c") / Param("load")
        a = monte_carlo_predict(expr, simple_bindings(), n_samples=500, rng=5)
        b = monte_carlo_predict(expr, simple_bindings(), n_samples=500, rng=5)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo_predict(Param("c"), simple_bindings(), n_samples=1)

    def test_clip_saturation_warns(self):
        b = Bindings()
        b.bind("c", 1.0)
        # Mean far below the lower bound: nearly every draw is clipped,
        # collapsing the parameter onto the bound.
        b.bind_runtime("load", StochasticValue(-1.0, 0.2))
        expr = Param("c") / Param("load")
        with pytest.warns(ClipSaturationWarning, match="load"):
            monte_carlo_predict(
                expr, b, n_samples=500, rng=8, clip={"load": (0.02, 1.0)}
            )

    def test_moderate_clipping_stays_silent(self):
        import warnings

        b = simple_bindings()
        expr = Param("c") / Param("load")
        with warnings.catch_warnings():
            warnings.simplefilter("error", ClipSaturationWarning)
            monte_carlo_predict(
                expr, b, n_samples=500, rng=9, clip={"load": (0.02, 1.0)}
            )

    def test_engines_agree_on_sor_model(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(3)]
        network = Network(SharedEthernet(dedicated_bytes_per_sec=1.25e6, latency=0.0))
        dec = equal_strips(302, 3)
        loads = {i: StochasticValue(0.5, 0.08) for i in range(3)}
        bindings = bindings_for_platform(
            machines, network, dec, loads=loads, bw_avail=StochasticValue(0.6, 0.1)
        )
        expr = SORModel(n_procs=3, iterations=10).expression()
        clip = {f"load[{i}]": (0.02, 1.0) for i in range(3)}
        clip["bw_avail"] = (0.02, 1.0)
        vec = monte_carlo_predict(expr, bindings, n_samples=400, rng=10, clip=clip)
        ref = monte_carlo_predict_reference(
            expr, bindings, n_samples=400, rng=10, clip=clip
        )
        np.testing.assert_allclose(vec.samples, ref.samples, rtol=1e-9, atol=0.0)


class TestSORModelValidation:
    def test_closed_form_tracks_monte_carlo(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(4)]
        network = Network(SharedEthernet(dedicated_bytes_per_sec=1.25e6, latency=0.0))
        dec = equal_strips(802, 4)
        loads = {i: StochasticValue(0.5, 0.08) for i in range(4)}
        bindings = bindings_for_platform(machines, network, dec, loads=loads, bw_avail=0.6)
        model = SORModel(n_procs=4, iterations=20)

        from repro.core.group_ops import MaxStrategy
        from repro.structural.expr import EvalPolicy

        clip = {f"load[{i}]": (0.02, 1.0) for i in range(4)}
        by_mean = compare_with_closed_form(
            model.expression(), bindings, n_samples=4000, rng=6, clip=clip
        )
        clark = compare_with_closed_form(
            model.expression(),
            bindings,
            EvalPolicy(max_strategy=MaxStrategy.CLARK),
            n_samples=4000,
            rng=6,
            clip=clip,
        )
        # BY_MEAN (the paper's selector) underestimates the true E[max]
        # by several percent; Clark closes the gap to ~1%.
        assert by_mean["mean_gap"] < 0.12
        assert clark["mean_gap"] < 0.03
        assert clark["mean_gap"] < by_mean["mean_gap"]
        # Neither spread is wildly off the true (sampled) spread.
        for report in (by_mean, clark):
            assert 0.5 < report["spread_ratio"] < 3.0

    def test_mc_value_usable_for_qos(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(2)]
        network = Network()
        dec = equal_strips(402, 2)
        loads = {0: StochasticValue(0.5, 0.1), 1: StochasticValue(0.7, 0.05)}
        bindings = bindings_for_platform(machines, network, dec, loads=loads)
        mc = monte_carlo_predict(
            SORModel(2, 10).expression(), bindings, n_samples=3000, rng=7,
            clip={"load[0]": (0.02, 1.0), "load[1]": (0.02, 1.0)},
        )
        q95 = mc.quantile(0.95)
        assert q95 > mc.mean
        assert mc.cdf(q95) == pytest.approx(0.95, abs=0.01)
