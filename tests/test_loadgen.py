"""Tests for repro.workload.loadgen and modes — production load synthesis."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.workload.loadgen import MIN_AVAILABILITY, ar1_noise, bursty_trace, single_mode_trace
from repro.workload.modes import PLATFORM1_MODES, PLATFORM2_MODES, LoadMode, ModalLoadModel


class TestAr1Noise:
    def test_stationary_std(self):
        x = ar1_noise(100_000, std=0.1, corr=0.8, rng=0)
        assert x.std() == pytest.approx(0.1, rel=0.05)

    def test_autocorrelation(self):
        x = ar1_noise(100_000, std=1.0, corr=0.7, rng=1)
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r == pytest.approx(0.7, abs=0.02)

    def test_zero_std(self):
        assert np.all(ar1_noise(10, 0.0, 0.5, rng=0) == 0.0)

    def test_zero_length(self):
        assert ar1_noise(0, 1.0, 0.5, rng=0).size == 0

    def test_invalid_corr_rejected(self):
        with pytest.raises(ValueError):
            ar1_noise(10, 1.0, 1.0)
        with pytest.raises(ValueError):
            ar1_noise(10, 1.0, -0.1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ar1_noise(-1, 1.0, 0.5)


class TestLoadMode:
    def test_value(self):
        mode = LoadMode(mean=0.48, std=0.025, weight=1.0)
        assert mode.value == StochasticValue.from_std(0.48, 0.025)

    def test_sample_clipped(self):
        mode = LoadMode(mean=0.05, std=0.2, weight=1.0)
        s = mode.sample(5000, rng=0)
        assert s.min() >= 0.02 and s.max() <= 1.0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            LoadMode(mean=1.5, std=0.1, weight=1.0)

    def test_invalid_burst_prob_rejected(self):
        with pytest.raises(ValueError):
            LoadMode(mean=0.5, std=0.1, weight=1.0, burst_prob=1.5)


class TestModalLoadModel:
    def test_stationary_probabilities(self):
        probs = PLATFORM1_MODES.stationary_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert len(probs) == 3

    def test_pick_mode_respects_exclusion(self):
        gen = np.random.default_rng(0)
        for _ in range(50):
            assert PLATFORM2_MODES.pick_mode(gen, exclude=2) != 2

    def test_pick_mode_single_mode(self):
        model = ModalLoadModel(modes=(LoadMode(0.5, 0.1, 1.0),))
        assert model.pick_mode(rng=0, exclude=0) == 0

    def test_estimates_normalised(self):
        est = PLATFORM2_MODES.estimates
        assert sum(m.weight for m in est) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModalLoadModel(modes=())


class TestSingleModeTrace:
    def test_paper_center_mode_summary(self):
        # Platform 1's representative experiment: the resident center
        # mode summarises to roughly 0.48 +/- 0.05.
        trace = single_mode_trace(PLATFORM1_MODES.modes[1], 3600.0, rng=5)
        sv = StochasticValue.from_samples(trace.values)
        assert sv.mean == pytest.approx(0.48, abs=0.02)
        assert sv.spread == pytest.approx(0.05, abs=0.02)

    def test_bounds(self):
        trace = single_mode_trace(PLATFORM1_MODES.modes[0], 1000.0, rng=1)
        assert trace.values.min() >= MIN_AVAILABILITY
        assert trace.values.max() <= 1.0

    def test_cadence(self):
        trace = single_mode_trace(PLATFORM1_MODES.modes[0], 100.0, dt=5.0, rng=2)
        assert trace.values.size == 20
        assert np.all(np.diff(trace.edges) == 5.0)

    def test_stays_near_mode(self):
        mode = PLATFORM1_MODES.modes[0]  # 0.94, not long-tailed
        trace = single_mode_trace(mode, 2000.0, rng=3)
        assert abs(trace.values.mean() - 0.94) < 0.02

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            single_mode_trace(PLATFORM1_MODES.modes[0], 0.0)


class TestBurstyTrace:
    def test_visits_multiple_modes(self):
        trace = bursty_trace(PLATFORM2_MODES, 7200.0, rng=4)
        means = [m.mean for m in PLATFORM2_MODES.modes]
        # Every mode should attract samples within its +/- 3 std band.
        for center in means:
            frac = np.mean(np.abs(trace.values - center) < 0.1)
            assert frac > 0.03, f"mode at {center} never visited"

    def test_long_run_mean_matches_weights(self):
        trace = bursty_trace(PLATFORM2_MODES, 200_000.0, rng=5)
        probs = PLATFORM2_MODES.stationary_probabilities()
        means = np.array([m.mean for m in PLATFORM2_MODES.modes])
        expected = float((probs * means).sum())
        assert trace.values.mean() == pytest.approx(expected, abs=0.03)

    def test_bounds(self):
        trace = bursty_trace(PLATFORM2_MODES, 3600.0, rng=6)
        assert trace.values.min() >= MIN_AVAILABILITY
        assert trace.values.max() <= 1.0

    def test_deterministic_with_seed(self):
        a = bursty_trace(PLATFORM2_MODES, 500.0, rng=7)
        b = bursty_trace(PLATFORM2_MODES, 500.0, rng=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_switches_modes(self):
        trace = bursty_trace(PLATFORM2_MODES, 3600.0, rng=8)
        jumps = np.abs(np.diff(trace.values))
        assert (jumps > 0.08).sum() > 5
