"""Unit tests for the serving subsystem: protocol, metrics, admission,
forecast cache and the prediction server's event loop."""

import json
import math

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.serving import (
    AdmissionPolicy,
    ClosedLoop,
    ForecastCache,
    Histogram,
    LoadDriver,
    MetricsRegistry,
    ModelSpec,
    OverloadedResponse,
    PredictRequest,
    PredictionServer,
    ServerConfig,
    TokenBucket,
    demo_server,
)
from repro.serving.protocol import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHED_THROTTLED,
    ErrorResponse,
    PredictResponse,
)
from repro.structural.engine import clear_plan_cache, plan_cache_stats
from repro.structural.expr import Param
from repro.structural.parameters import Bindings
from repro.workload.traces import Trace


def _request(i=0, client="c0", model="m", submitted=0.0, **kw):
    return PredictRequest(
        request_id=i, client_id=client, model=model, submitted=submitted, **kw
    )


def tiny_server(*, config=None, degradation=True):
    """A minimal one-resource server: model `m` = load * 10."""
    nws = NetworkWeatherService(
        degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.4)) if degradation else None
    )
    nws.register("cpu:a", Trace.constant(0.5))
    nws.advance_to(60.0)
    server = PredictionServer(nws, config=config, rng=3)
    bindings = Bindings({"scale": 10.0})
    bindings.bind_runtime("load", StochasticValue(0.5, 0.1))
    spec = ModelSpec(
        name="m",
        expression=Param("scale") * Param("load"),
        bindings=bindings,
        resources={"load": "cpu:a"},
    )
    server.register_model(spec)
    return server


class TestProtocol:
    def test_deadline_before_submission_rejected(self):
        with pytest.raises(ValueError):
            _request(submitted=10.0, deadline=5.0)

    def test_response_statuses(self):
        ok = PredictResponse(request_id=1, client_id="c", completed=1.0)
        shed = OverloadedResponse(request_id=2, client_id="c", completed=1.0)
        err = ErrorResponse(request_id=3, client_id="c", completed=1.0, message="x")
        assert ok.ok and ok.status == "ok"
        assert not shed.ok and shed.status == "overloaded"
        assert not err.ok and err.status == "error"

    def test_bad_quality_rejected(self):
        with pytest.raises(ValueError):
            PredictResponse(request_id=1, client_id="c", completed=1.0, quality="great")

    def test_bad_shed_reason_rejected(self):
        with pytest.raises(ValueError):
            OverloadedResponse(request_id=1, client_id="c", completed=1.0, reason="tired")


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_name_collision_across_types_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_exact_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (1.0, 10.0))
        for v in [0.5, 2.0, 3.0, 20.0]:
            h.observe(v)
        s = h.stats()
        assert s["count"] == 4
        assert s["buckets"]["le_1"] == 1
        assert s["buckets"]["le_10"] == 2
        assert s["buckets"]["overflow"] == 1
        assert s["max"] == 20.0

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.5)
        reg.histogram("c").observe(float("inf"))
        payload = json.loads(reg.to_json())
        assert payload["counters"]["a"] == 1.0
        assert payload["gauges"]["b"] == 2.5
        assert payload["histograms"]["c"]["count"] == 1

    def test_histogram_refetch_with_different_bounds_rejected(self):
        # Regression: histogram(name, other_bounds) silently returned
        # the existing histogram, letting two call sites disagree about
        # the bucket layout of one shared metric.
        reg = MetricsRegistry()
        reg.histogram("lat", (1.0, 10.0))
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("lat", (1.0, 5.0))
        with pytest.raises(ValueError, match="bounds"):
            reg.histogram("lat")  # default bounds differ too
        # Same bounds re-fetch the same object (int/float-equal counts).
        assert reg.histogram("lat", (1, 10)) is reg.histogram("lat", (1.0, 10.0))

    def test_histogram_rejects_nan(self):
        # Regression: one NaN observation made min/max/quantiles NaN and
        # fell outside every bucket, so counts stopped summing to count.
        h = MetricsRegistry().histogram("lat", (1.0, 10.0))
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))
        assert h.count == 0

    def test_histogram_inf_stays_consistent(self):
        h = MetricsRegistry().histogram("lat", (1.0, 10.0))
        for v in (0.5, 2.0, float("inf")):
            h.observe(v)
        s = h.stats()
        assert s["count"] == 3
        assert sum(s["buckets"].values()) == s["count"]
        assert s["buckets"]["overflow"] == 1
        assert s["min"] == 0.5 and s["max"] == float("inf")
        assert math.isfinite(s["mean"])  # mean over finite observations
        assert s["p50"] == 2.0  # nearest-order-statistic, inf-safe
        assert h.quantile(0.5) == 2.0

    def test_merged_histogram_with_inf_stays_consistent(self):
        a = Histogram("lat", (1.0, 10.0))
        b = Histogram("lat", (1.0, 10.0))
        a.observe(0.5)
        a.observe(float("inf"))
        b.observe(3.0)
        merged = Histogram.merged("lat", [a, b])
        s = merged.stats()
        assert s["count"] == 3
        assert sum(s["buckets"].values()) == 3
        assert s["p50"] == 3.0
        assert merged.quantile(0.9) == float("inf")
        with pytest.raises(ValueError, match="NaN"):
            merged.observe(float("nan"))


class TestAdmission:
    def test_token_bucket_spends_and_refills(self):
        b = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert b.allow(0.0) and b.allow(0.0)
        assert not b.allow(0.0)
        assert b.allow(2.0)  # refilled

    def test_bucket_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert b.tokens(100.0) == 2.0

    def test_bucket_exact_at_rate_boundary_cadence(self):
        # Float-drift regression: a client submitting at *exactly* its
        # allowed rate must never be shed.  The old implementation
        # accumulated `tokens += rate * dt` per call, so cadences whose
        # step is not exactly representable (1/3 s here) under-refilled
        # by ulps — e.g. 3 * (1/3) == 0.9999999999999998 < 1 — and
        # spuriously throttled the well-behaved client.
        b = TokenBucket(rate=3.0, burst=1.0, now=0.0)
        step = 1.0 / 3.0
        for k in range(1, 1000):
            assert b.allow(k * step), f"shed at cadence step {k}"

    def test_bucket_denied_poll_does_not_drift(self):
        # A denied request must leave the bucket state untouched, so
        # rapid polling between grants cannot erode the refill.
        b = TokenBucket(rate=1.0, burst=1.0, now=0.0)
        assert b.allow(0.0)
        for i in range(100):
            assert not b.allow(0.5 + i * 1e-3)
        assert b.allow(1.0)  # exactly one second after the spend

    def test_queue_full_shed(self):
        server = tiny_server(
            config=ServerConfig(admission=AdmissionPolicy(max_queue=2))
        )
        assert server.submit(_request(0)) is None
        assert server.submit(_request(1)) is None
        resp = server.submit(_request(2))
        assert isinstance(resp, OverloadedResponse) and resp.reason == SHED_QUEUE_FULL
        assert resp.retry_after > 0.0

    def test_per_client_throttle(self):
        server = tiny_server(
            config=ServerConfig(
                admission=AdmissionPolicy(max_queue=100, client_rate=0.1, client_burst=2.0)
            )
        )
        assert server.submit(_request(0, submitted=60.0)) is None
        assert server.submit(_request(1, submitted=60.0)) is None
        resp = server.submit(_request(2, submitted=60.0))
        assert isinstance(resp, OverloadedResponse) and resp.reason == SHED_THROTTLED
        # A different client is not throttled.
        assert server.submit(_request(3, client="c1", submitted=60.0)) is None

    def test_deadline_shedding(self):
        # The first request occupies the server past the second's
        # deadline; the second is shed at dequeue time, not evaluated.
        server = tiny_server(config=ServerConfig(batch_max=1, service_time_base=5.0))
        assert server.submit(_request(0, submitted=60.0)) is None
        assert server.submit(_request(1, client="c1", submitted=60.0, deadline=62.0)) is None
        out = server.step(90.0)
        assert len(out) == 2
        assert out[0].ok
        assert isinstance(out[1], OverloadedResponse) and out[1].reason == SHED_DEADLINE
        assert server.metrics.counter("shed_deadline").value == 1.0


class TestForecastCache:
    def make(self):
        nws = NetworkWeatherService(
            degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.4))
        )
        nws.register("cpu:a", Trace.constant(0.5))
        return ForecastCache(nws, refresh_interval=5.0)

    def test_reuses_young_forecast(self):
        cache = self.make()
        cache.ingest_to(60.0)
        a = cache.get("cpu:a", 60.0)
        b = cache.get("cpu:a", 62.0)
        assert a is b
        assert cache.stats()["hits"] == 1

    def test_refreshes_old_forecast(self):
        cache = self.make()
        cache.ingest_to(60.0)
        cache.get("cpu:a", 60.0)
        cache.get("cpu:a", 66.0)
        assert cache.stats()["refreshes"] == 2

    def test_new_telemetry_invalidates(self):
        cache = self.make()
        cache.ingest_to(60.0)
        cache.get("cpu:a", 60.0)
        invalidated = cache.ingest_to(70.0)  # two new 5 s samples land
        assert invalidated == 1
        cache.get("cpu:a", 61.0)
        assert cache.stats()["refreshes"] == 2


class TestServer:
    def test_single_request_round_trip(self):
        server = tiny_server()
        assert server.submit(_request(0, submitted=60.0)) is None
        out = server.step(61.0)
        assert len(out) == 1
        r = out[0]
        assert r.ok and r.request_id == 0 and r.quality == "fresh"
        # load ~0.5 with small forecast error: prediction near 5.0
        assert r.value.mean == pytest.approx(5.0, rel=0.1)
        assert r.latency > 0.0

    def test_unknown_model_is_typed_error(self):
        server = tiny_server()
        resp = server.submit(_request(0, model="nope", submitted=60.0))
        assert isinstance(resp, ErrorResponse) and "unknown model" in resp.message

    def test_unknown_override_is_typed_error(self):
        server = tiny_server()
        resp = server.submit(_request(0, submitted=60.0, overrides={"zz": 1.0}))
        assert isinstance(resp, ErrorResponse) and "zz" in resp.message

    def test_override_pins_parameter(self):
        server = tiny_server()
        server.submit(_request(0, submitted=60.0, overrides={"load": 1.0}))
        (r,) = server.step(61.0)
        assert r.value.mean == pytest.approx(10.0, rel=1e-6)
        assert r.value.spread == pytest.approx(0.0, abs=1e-9)

    def test_batching_answers_concurrent_requests_together(self):
        server = tiny_server()
        for i in range(10):
            assert server.submit(_request(i, client=f"c{i}", submitted=60.0)) is None
        out = server.step(61.0)
        assert len(out) == 10
        assert all(r.ok and r.batch_size == 10 for r in out)
        assert server.metrics.counter("batches_total").value == 1.0

    def test_reference_mode_serves_one_by_one(self):
        server = tiny_server(config=ServerConfig(mode="reference", n_samples=64))
        for i in range(4):
            server.submit(_request(i, client=f"c{i}", submitted=60.0))
        out = server.step(61.0)
        assert len(out) == 4
        assert all(r.batch_size == 1 for r in out)

    def test_step_backwards_rejected(self):
        server = tiny_server()
        server.step(70.0)
        with pytest.raises(ValueError):
            server.step(60.0)

    def test_busy_time_creates_backpressure(self):
        cfg = ServerConfig(
            batch_max=4, service_time_base=1.0, service_time_per_request=0.1
        )
        server = tiny_server(config=cfg)
        for i in range(8):
            server.submit(_request(i, client=f"c{i}", submitted=60.0))
        # The first batch (1.4 s) completes by t=61.5; the second starts
        # at 61.4, completes at 62.8 and is delivered by the later step.
        first = server.step(61.5)
        assert len(first) == 4
        rest = server.step(100.0)
        assert len(rest) == 4
        assert rest[0].latency > first[0].latency

    def test_quality_tag_degrades_with_stale_telemetry(self):
        from repro.faults.plan import FaultPlan, Outage

        nws = NetworkWeatherService(
            degradation=DegradationPolicy(
                staleness_threshold=10.0, fallback_after=1e6,
                prior=StochasticValue(0.5, 0.4),
            ),
            faults=FaultPlan(sensor_dropouts={"cpu:a": (Outage(95.0, 1e6),)}),
        )
        nws.register("cpu:a", Trace.constant(0.5))
        nws.advance_to(60.0)
        server = PredictionServer(nws, rng=3)
        b = Bindings({"scale": 10.0})
        b.bind_runtime("load", StochasticValue(0.5, 0.1))
        server.register_model(
            ModelSpec(
                name="m",
                expression=Param("scale") * Param("load"),
                bindings=b,
                resources={"load": "cpu:a"},
            )
        )
        server.step(90.0)
        server.submit(_request(0, submitted=90.0))
        (fresh,) = server.step(91.0)
        assert fresh.quality == "fresh"
        # Past the trace end the sensor goes silent; forecasts go stale.
        server.step(300.0)
        server.submit(_request(1, submitted=300.0))
        (stale,) = server.step(301.0)
        assert stale.quality == "stale"
        assert stale.staleness > 10.0
        assert stale.value.spread > fresh.value.spread

    def test_snapshot_json_round_trip(self):
        server = tiny_server()
        server.submit(_request(0, submitted=60.0))
        server.step(61.0)
        snap = server.snapshot()
        payload = json.loads(json.dumps(snap))
        assert payload["metrics"]["counters"]["responses_ok"] == 1.0
        assert "plan_cache" in payload and "forecast_cache" in payload

    def test_duplicate_model_rejected(self):
        server = tiny_server()
        with pytest.raises(ValueError, match="already registered"):
            server.register_model(
                ModelSpec(
                    name="m",
                    expression=Param("x"),
                    bindings=Bindings({"x": 1.0}),
                )
            )

    def test_model_with_unknown_resource_rejected(self):
        server = tiny_server()
        b = Bindings()
        b.bind_runtime("load", 0.5)
        with pytest.raises(ValueError, match="unregistered NWS resources"):
            server.register_model(
                ModelSpec(
                    name="m2",
                    expression=Param("load"),
                    bindings=b,
                    resources={"load": "cpu:nope"},
                )
            )

    def test_resources_must_be_runtime_params(self):
        with pytest.raises(ValueError, match="non-runtime"):
            ModelSpec(
                name="m",
                expression=Param("x"),
                bindings=Bindings({"x": 1.0}),
                resources={"x": "cpu:a"},
            )


class TestDemoServing:
    def test_models_share_one_compiled_plan(self):
        clear_plan_cache()
        server, _, _ = demo_server(rng=11)
        drv = LoadDriver(server, server.models, ClosedLoop(clients=6), max_requests=30, rng=5)
        rep = drv.run()
        assert rep.ok == 30 and rep.errors == 0
        stats = plan_cache_stats()
        assert stats["misses"] == 1  # one expression, three models
        assert stats["hits"] >= 1
        assert stats["evictions"] == 0

    def test_deterministic_given_seed(self):
        def drive():
            server, _, _ = demo_server(rng=11)
            drv = LoadDriver(
                server, server.models, ClosedLoop(clients=4), max_requests=24, rng=9
            )
            rep = drv.run()
            return [
                (r.request_id, r.status, getattr(r, "value", None)) for r in rep.responses
            ]

        a, b = drive(), drive()
        assert a == b

    def test_predictions_track_direct_evaluation(self):
        server, plat, nws = demo_server(rng=11)
        server.submit(_request(0, model="sor-1000", submitted=60.0))
        (r,) = server.step(61.0)
        assert r.ok
        assert math.isfinite(r.value.mean) and r.value.mean > 0
        assert r.p95 > r.value.mean
