"""Tests for the Section 2.2.1 component models and the full SOR model."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.core.stochastic import StochasticValue as SV
from repro.sor.decomposition import ELEMENT_BYTES, equal_strips
from repro.structural.comm_models import comm_component, dedbw_name, pt_to_pt, rece_lr, send_lr
from repro.structural.comp_models import comp_benchmark, comp_component, comp_op_count
from repro.structural.components import ComponentModel
from repro.structural.expr import EvalPolicy, Param
from repro.structural.parameters import Bindings, param_name
from repro.structural.skew import max_skew_delay, skew_widened_prediction
from repro.structural.sor_model import SORModel, bindings_for_platform


def comm_bindings():
    b = Bindings()
    b.bind("size_elt", 8.0)
    b.bind("bw_avail", 0.5)
    for p in range(3):
        b.bind(param_name("msg_elts", p), 100.0)
    b.bind(dedbw_name(0, 1), 1000.0)
    b.bind(dedbw_name(1, 2), 1000.0)
    return b


class TestCommModels:
    def test_pt_to_pt_formula(self):
        # PtToPt = msg_elts * size_elt / (dedbw * bw_avail)
        out = pt_to_pt(0, 1).evaluate(comm_bindings())
        assert out.mean == pytest.approx(100.0 * 8.0 / (1000.0 * 0.5))

    def test_pt_to_pt_symmetric_link_name(self):
        assert dedbw_name(2, 0) == dedbw_name(0, 2) == "dedbw[0,2]"

    def test_pt_to_pt_self_rejected(self):
        with pytest.raises(ValueError):
            pt_to_pt(1, 1)

    def test_send_lr_interior_two_terms(self):
        out = send_lr(1, 3).evaluate(comm_bindings())
        assert out.mean == pytest.approx(2 * 1.6)

    def test_send_lr_boundary_one_term(self):
        out = send_lr(0, 3).evaluate(comm_bindings())
        assert out.mean == pytest.approx(1.6)

    def test_rece_lr_matches_send_for_symmetric_params(self):
        b = comm_bindings()
        assert rece_lr(1, 3).evaluate(b).mean == pytest.approx(send_lr(1, 3).evaluate(b).mean)

    def test_comm_component_is_send_plus_receive(self):
        b = comm_bindings()
        total = comm_component(1, 3, "red").evaluate(b)
        assert total.mean == pytest.approx(4 * 1.6)

    def test_comm_component_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            comm_component(0, 3, "green")

    def test_stochastic_bw_avail_propagates(self):
        b = comm_bindings()
        b.bind_runtime("bw_avail", SV(0.5, 0.1))
        out = pt_to_pt(0, 1).evaluate(b)
        assert out.spread > 0


class TestCompModels:
    def test_benchmark_model(self):
        b = Bindings({param_name("numelt", 0): 1000.0, param_name("bm", 0): 2e-3})
        out = comp_benchmark(0).evaluate(b)
        assert out.mean == pytest.approx(2.0)

    def test_op_count_model(self):
        b = Bindings(
            {
                param_name("numelt", 0): 1000.0,
                param_name("ops_per_elt", 0): 6.0,
                param_name("cpu_rate", 0): 3000.0,
            }
        )
        out = comp_op_count(0).evaluate(b)
        assert out.mean == pytest.approx(2.0)

    def test_production_divides_by_load(self):
        b = Bindings(
            {
                param_name("numelt", 0): 1000.0,
                param_name("bm", 0): 2e-3,
                param_name("load", 0): SV(0.5, 0.0),
            }
        )
        out = comp_component(0, "red").evaluate(b)
        assert out.mean == pytest.approx(4.0)

    def test_stochastic_load_gives_stochastic_time(self):
        b = Bindings(
            {
                param_name("numelt", 0): 1000.0,
                param_name("bm", 0): 2e-3,
                param_name("load", 0): SV(0.48, 0.05),
            }
        )
        out = comp_component(0, "black").evaluate(b)
        assert out.mean == pytest.approx(2.0 / 0.48)
        assert out.spread / out.mean == pytest.approx(0.05 / 0.48, rel=1e-9)

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            comp_component(0, "blue")


class TestComponentModel:
    def test_named_wrapper(self):
        c = ComponentModel("C", Param("x") + 1.0)
        b = Bindings({"x": 2.0})
        assert c.evaluate(b).mean == 3.0
        assert c.params() == {"x"}
        name, value = c.breakdown(b)
        assert name == "C" and value.mean == 3.0

    def test_nesting(self):
        inner = ComponentModel("inner", Param("x") * 2.0)
        outer = ComponentModel("outer", inner + 1.0)
        assert outer.evaluate(Bindings({"x": 5.0})).mean == 11.0


class TestSORModel:
    def make_platform(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(4)]
        network = Network(SharedEthernet(dedicated_bytes_per_sec=1.25e6, latency=0.0))
        return machines, network

    def test_dedicated_prediction_analytic(self):
        machines, network = self.make_platform()
        n, its = 402, 10
        dec = equal_strips(n, 4)
        model = SORModel(n_procs=4, iterations=its)
        b = bindings_for_platform(machines, network, dec, bw_avail=1.0)
        pred = model.predict(b)
        # Compute: per iteration 2 * (elements/2) / rate on the slowest
        # (equal machines). Comm: interior processor sends 2 + receives 2
        # ghost rows per colour phase.
        comp = 2 * (dec.elements(0) / 2.0) / 1e5
        ghost_t = dec.ghost_row_bytes() / 1.25e6
        comm = 2 * 4 * ghost_t
        assert pred.mean == pytest.approx(its * (comp + comm), rel=1e-9)

    def test_iterations_scale_linearly(self):
        machines, network = self.make_platform()
        dec = equal_strips(402, 4)
        b = bindings_for_platform(machines, network, dec)
        p10 = SORModel(4, 10).predict(b)
        p20 = SORModel(4, 20).predict(b)
        assert p20.mean == pytest.approx(2 * p10.mean)

    def test_stochastic_load_widens_prediction(self):
        machines, network = self.make_platform()
        dec = equal_strips(402, 4)
        loads = {i: SV(0.5, 0.1) for i in range(4)}
        b = bindings_for_platform(machines, network, dec, loads=loads)
        pred = SORModel(4, 10).predict(b)
        assert pred.spread > 0
        # Relative spread approximately matches the load's relative spread.
        assert pred.spread / pred.mean == pytest.approx(0.1 / 0.5, rel=0.2)

    def test_single_processor_no_comm_terms(self):
        model = SORModel(n_procs=1, iterations=5)
        expr = model.iteration_expression()
        names = expr.params()
        assert not any(n.startswith("dedbw") for n in names)

    def test_component_breakdown(self):
        machines, network = self.make_platform()
        dec = equal_strips(402, 4)
        b = bindings_for_platform(machines, network, dec)
        breakdown = SORModel(4, 10).component_breakdown(b)
        assert "RedComp[0]" in breakdown
        assert "RedComm[0]" in breakdown
        assert all(v.mean > 0 for v in breakdown.values())

    def test_op_count_variant(self):
        machines, network = self.make_platform()
        dec = equal_strips(402, 4)
        b = bindings_for_platform(machines, network, dec)
        bench = SORModel(4, 10, use_op_count=False).predict(b)
        opcount = SORModel(4, 10, use_op_count=True).predict(b)
        # The bindings calibrate ops/rate to the same effective speed.
        assert opcount.mean == pytest.approx(bench.mean, rel=1e-9)

    def test_machine_count_mismatch_rejected(self):
        machines, network = self.make_platform()
        with pytest.raises(ValueError):
            bindings_for_platform(machines[:2], network, equal_strips(402, 4))

    def test_invalid_model_args_rejected(self):
        with pytest.raises(ValueError):
            SORModel(0, 10)
        with pytest.raises(ValueError):
            SORModel(4, 0)

    def test_bindings_mark_runtime_parameters(self):
        machines, network = self.make_platform()
        dec = equal_strips(402, 4)
        b = bindings_for_platform(machines, network, dec)
        runtime = b.runtime_names()
        assert "bw_avail" in runtime
        assert param_name("load", 0) in runtime


class TestSkew:
    def test_max_skew_delay_is_p_iterations(self):
        out = max_skew_delay(SV(2.0, 0.4), 4)
        assert out.mean == pytest.approx(8.0)
        assert out.spread == pytest.approx(1.6)

    def test_widened_prediction_contains_original_range(self):
        pred = SV(100.0, 10.0)
        widened = skew_widened_prediction(pred, SV(2.0, 0.4), 4, fraction=0.5)
        assert widened.lo <= pred.lo + 1e-9
        assert widened.hi >= pred.hi

    def test_zero_fraction_identity(self):
        pred = SV(100.0, 10.0)
        out = skew_widened_prediction(pred, SV(2.0, 0.4), 4, fraction=0.0)
        assert out.mean == pytest.approx(100.0)
        assert out.spread == pytest.approx(10.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            skew_widened_prediction(SV(1.0, 0.1), SV(1.0, 0.1), 2, fraction=1.5)

    def test_invalid_procs_rejected(self):
        with pytest.raises(ValueError):
            max_skew_delay(SV(1.0, 0.1), 0)
