"""Tests for repro.util.ascii_plot — terminal figure rendering."""

import numpy as np
import pytest

from repro.util.ascii_plot import ascii_histogram, ascii_series, sparkline


class TestHistogram:
    def test_row_per_bin(self):
        out = ascii_histogram([1.0, 2.0, 3.0], bins=5)
        assert len(out.splitlines()) == 6  # title + 5 bins

    def test_counts_shown(self):
        out = ascii_histogram([1.0] * 7 + [9.0] * 3, bins=2)
        assert out.splitlines()[1].rstrip().endswith("7")
        assert out.splitlines()[2].rstrip().endswith("3")

    def test_peak_bin_fills_width(self):
        out = ascii_histogram([1.0] * 10 + [9.0], bins=2, width=20)
        assert "#" * 20 in out

    def test_label_in_title(self):
        assert ascii_histogram([1.0, 2.0], label="load").startswith("load histogram")

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)
        with pytest.raises(ValueError):
            ascii_histogram([1.0], width=0)
        with pytest.raises(ValueError):
            ascii_histogram([])


class TestSeries:
    def test_dimensions(self):
        out = ascii_series(np.sin(np.linspace(0, 10, 500)), height=8, width=40)
        lines = out.splitlines()
        assert len(lines) == 10  # title + 8 rows + axis
        assert all(len(l) == 42 for l in lines[1:-1])  # |...| borders

    def test_one_marker_per_column(self):
        out = ascii_series(np.linspace(0, 1, 100), height=5, width=30)
        body = out.splitlines()[1:-1]
        for col in range(30):
            marks = sum(1 for row in body if row[col + 1] == "*")
            assert marks == 1

    def test_monotone_series_descends_visually(self):
        out = ascii_series(np.linspace(0, 1, 100), height=5, width=20)
        body = out.splitlines()[1:-1]
        # The top row's markers must be to the right of the bottom row's.
        top = body[0].index("*")
        bottom = body[-1].index("*")
        assert top > bottom

    def test_constant_series(self):
        out = ascii_series([3.0] * 50, height=4, width=10)
        assert out.count("*") == 10

    def test_range_in_title(self):
        out = ascii_series([2.0, 4.0], label="load")
        assert "load" in out.splitlines()[0]
        assert "[2 .. 4]" in out.splitlines()[0]

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            ascii_series([1.0, 2.0], height=1)
        with pytest.raises(ValueError):
            ascii_series([1.0, 2.0], width=1)


class TestSparkline:
    def test_width(self):
        assert len(sparkline(np.random.default_rng(0).random(500), width=40)) == 40

    def test_constant_single_level(self):
        s = sparkline([5.0] * 100, width=20)
        assert len(set(s)) == 1

    def test_extremes_use_extreme_chars(self):
        s = sparkline([0.0] * 50 + [1.0] * 50, width=10)
        assert s[0] == " " and s[-1] == "@"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)
