"""Focused edge-case coverage across subsystems."""

import numpy as np
import pytest

from repro.cli import main
from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.cluster.simulator import ClusterSimulator, IterativeProgram, Phase
from repro.core import StochasticValue
from repro.core.arithmetic import Relatedness, multiply
from repro.core.empirical import EmpiricalValue
from repro.nws.predictor import AdaptivePredictor
from repro.scheduling.sor_advisor import advise_decomposition
from repro.workload.traces import Trace


class TestStochasticEdges:
    def test_tiny_spread_behaves_like_point(self):
        sv = StochasticValue(5.0, 1e-300)
        assert not sv.is_point
        assert sv.contains(5.0)
        assert sv.cdf(5.0) == pytest.approx(0.5)

    def test_huge_values(self):
        sv = StochasticValue(1e300, 1e299)
        out = sv + sv
        assert np.isfinite(out.mean)

    def test_multiply_point_zero(self):
        out = multiply(StochasticValue(5.0, 1.0), 0.0, Relatedness.RELATED)
        assert out.mean == 0.0 and out.spread == 0.0

    def test_negative_mean_percent_roundtrip(self):
        sv = StochasticValue.from_percent(-4.0, 25.0)
        assert sv.percent == pytest.approx(25.0)


class TestSimulatorEdges:
    def test_all_zero_work_phase(self):
        prog = IterativeProgram("z", (Phase("idle", (0.0, 0.0)),), 3)
        sim = ClusterSimulator([Machine("a", 1.0), Machine("b", 1.0)], Network())
        result = sim.run(prog)
        assert result.elapsed == 0.0
        np.testing.assert_array_equal(result.iteration_ends, 0.0)

    def test_single_machine_single_iteration(self):
        prog = IterativeProgram("s", (Phase("c", (10.0,)),), 1)
        result = ClusterSimulator([Machine("a", 10.0)], Network()).run(prog)
        assert result.elapsed == pytest.approx(1.0)
        assert result.max_skew == 0.0

    def test_negative_start_time(self):
        prog = IterativeProgram("s", (Phase("c", (10.0,)),), 1)
        result = ClusterSimulator([Machine("a", 10.0)], Network()).run(prog, start_time=-5.0)
        assert result.start == -5.0
        assert result.end == pytest.approx(-4.0)

    def test_availability_changing_mid_phase(self):
        trace = Trace.from_samples(0.0, 1.0, [1.0, 0.1])
        machines = [Machine("a", 10.0, availability=trace)]
        prog = IterativeProgram("s", (Phase("c", (15.0,)),), 1)
        result = ClusterSimulator(machines, Network()).run(prog)
        # 10 units in the first second, then 5 more at rate 1.0.
        assert result.elapsed == pytest.approx(6.0)


class TestPredictorEdges:
    def test_error_window_changes_spread(self):
        rng = np.random.default_rng(0)
        series = np.concatenate([rng.normal(1.0, 0.5, 100), rng.normal(1.0, 0.01, 20)])
        short = AdaptivePredictor(error_window=8, spread_method="rmse")
        long = AdaptivePredictor(error_window=120, spread_method="rmse")
        short.observe_series(series)
        long.observe_series(series)
        # The short window has mostly forgotten the noisy era.
        assert short.forecast().spread < long.forecast().spread

    def test_single_observation_forecast(self):
        p = AdaptivePredictor()
        p.observe(0.5)
        out = p.forecast()
        assert out.mean == pytest.approx(0.5)
        assert out.spread == 0.0


class TestAdvisorEdges:
    def test_single_machine_platform(self):
        choice = advise_decomposition(
            [Machine("solo", 1e5)], Network(), 300, 5, {0: StochasticValue(0.5, 0.1)}
        )
        assert choice.best.machine_indices == (0,)
        labels = {c.label for c in choice.candidates}
        assert not any(l.startswith("drop") for l in labels)

    def test_identical_loads_keep_all_machines(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(3)]
        loads = {i: StochasticValue(0.5, 0.05) for i in range(3)}
        choice = advise_decomposition(machines, Network(), 2000, 20, loads, lam=2.0)
        assert len(choice.best.machine_indices) == 3


class TestEmpiricalEdges:
    def test_two_sample_cloud(self):
        e = EmpiricalValue.from_samples([1.0, 3.0])
        assert e.mean == 2.0
        assert e.quantile(0.5) == 2.0

    def test_constant_cloud_interval_degenerate(self):
        e = EmpiricalValue.from_samples([4.0] * 10)
        assert e.interval == (4.0, 4.0)
        assert e.contains(4.0)
        assert not e.contains(4.0001)

    def test_unrelated_combine_deterministic_under_seed(self):
        x = EmpiricalValue.from_samples(np.arange(100.0))
        y = EmpiricalValue.from_samples(np.arange(100.0))
        a = x.add(y, Relatedness.UNRELATED, rng=7)
        b = x.add(y, Relatedness.UNRELATED, rng=7)
        np.testing.assert_array_equal(a.samples, b.samples)


class TestCliEdges:
    def test_trace_platform1(self, capsys):
        assert main(["trace", "--platform", "1", "--duration", "300"]) == 0
        assert "platform 1 load" in capsys.readouterr().out

    def test_figures_plot_1_and_3(self, capsys):
        assert main(["figures", "--which", "1", "3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "runtime (s) histogram" in out
        assert "bandwidth (Mbit/s) histogram" in out

    def test_trace_other_machine(self, capsys):
        assert main(["trace", "--platform", "2", "--machine", "2", "--duration", "300"]) == 0
        assert "ultra-1" in capsys.readouterr().out
