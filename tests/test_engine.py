"""Tests for repro.structural.engine — the vectorised evaluation plan.

The contract under test: for every supported policy, compiling an
expression and evaluating a draw batch produces *elementwise-equal*
results to the per-sample reference loop consuming the same RNG stream.
"""

import numpy as np
import pytest

from repro.core.arithmetic import ReciprocalRule, Relatedness
from repro.core.group_ops import MaxStrategy
from repro.core.stochastic import StochasticValue
from repro.structural.engine import (
    CompiledExpr,
    UnsupportedPolicyError,
    clear_plan_cache,
    compile_expr,
    plan_cache_stats,
)
from repro.structural.expr import (
    Const,
    EvalPolicy,
    Max,
    Min,
    Param,
    Sub,
    Sum,
)
from repro.structural.montecarlo import (
    monte_carlo_predict,
    monte_carlo_predict_reference,
)
from repro.structural.parameters import Bindings


def rich_bindings() -> Bindings:
    """A mix of sampled, bound-stochastic, and point parameters."""
    b = Bindings()
    b.bind("work", 80.0)
    b.bind("fixed", StochasticValue(3.0, 0.8))  # compile time: never sampled
    b.bind_runtime("load", StochasticValue(0.5, 0.1))
    b.bind_runtime("bw", StochasticValue(0.7, 0.12))
    b.bind_runtime("zmean", StochasticValue(0.0, 0.5))  # zero-mean stochastic
    b.bind_runtime("pt", 2.0)  # run time but point: never sampled
    return b


#: Expression shapes covering every node type, plus the awkward cases:
#: non-sampled stochastic operands, zero-mean operands, nested groups.
EXPRESSIONS = {
    "div-chain": Param("work") / Param("load") / Param("pt"),
    "sub-mix": Sub(Param("work") / Param("load"), Param("fixed") * Param("bw")),
    "max-nested": Max(
        Param("work") / Param("load"),
        Param("work") / Param("bw") + Param("fixed"),
        Min(Param("work"), Param("work") * Param("pt")),
    ),
    "sum-terms": Sum(
        Param("load") * Param("work"),
        Param("bw") * 10.0,
        Param("fixed"),
        Param("zmean") * Param("load"),
    ),
    "const-only": Const(StochasticValue(5.0, 1.0)) * 3.0 + 2.0,
}

POLICIES = [
    EvalPolicy(relatedness=rel, reciprocal_rule=rec, max_strategy=strat)
    for rel in (Relatedness.RELATED, Relatedness.UNRELATED)
    for rec in (ReciprocalRule.FIRST_ORDER, ReciprocalRule.PAPER_LITERAL)
    for strat in (MaxStrategy.BY_MEAN, MaxStrategy.BY_ENDPOINT, MaxStrategy.CLARK)
]


class TestSeededEquivalence:
    @pytest.mark.parametrize("name", sorted(EXPRESSIONS))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_engines_agree(self, name, policy):
        expr = EXPRESSIONS[name]
        b = rich_bindings()
        vec = monte_carlo_predict(expr, b, n_samples=200, rng=3, policy=policy)
        ref = monte_carlo_predict_reference(expr, b, n_samples=200, rng=3, policy=policy)
        np.testing.assert_allclose(vec.samples, ref.samples, rtol=1e-9, atol=0.0)

    def test_monte_carlo_strategy_falls_back(self):
        expr = EXPRESSIONS["max-nested"]
        b = rich_bindings()
        # The MC Max strategy consumes the policy RNG per evaluation, so
        # it cannot be compiled; monte_carlo_predict must transparently
        # run the reference loop and match it draw for draw.
        vec = monte_carlo_predict(
            expr,
            b,
            n_samples=50,
            rng=4,
            policy=EvalPolicy(max_strategy=MaxStrategy.MONTE_CARLO, mc_rng=np.random.default_rng(9)),
        )
        ref = monte_carlo_predict_reference(
            expr,
            b,
            n_samples=50,
            rng=4,
            policy=EvalPolicy(max_strategy=MaxStrategy.MONTE_CARLO, mc_rng=np.random.default_rng(9)),
        )
        np.testing.assert_array_equal(vec.samples, ref.samples)

    def test_zero_division_parity(self):
        b = Bindings()
        b.bind("c", 1.0)
        b.bind("zero", 0.0)
        expr = Param("c") / Param("zero")
        with pytest.raises(ZeroDivisionError):
            monte_carlo_predict(expr, b, n_samples=10, rng=0)
        with pytest.raises(ZeroDivisionError):
            monte_carlo_predict_reference(expr, b, n_samples=10, rng=0)


class TestDegenerateCases:
    def test_all_point_bindings(self):
        b = Bindings({"x": 3.0, "y": 4.0})
        expr = Param("x") * Param("y") + 1.0
        vec = monte_carlo_predict(expr, b, n_samples=25, rng=0)
        assert np.all(vec.samples == 13.0)

    def test_minimum_sample_count(self):
        b = rich_bindings()
        expr = EXPRESSIONS["div-chain"]
        vec = monte_carlo_predict(expr, b, n_samples=2, rng=5)
        ref = monte_carlo_predict_reference(expr, b, n_samples=2, rng=5)
        np.testing.assert_array_equal(vec.samples, ref.samples)

    def test_constant_only_expression(self):
        vec = monte_carlo_predict(EXPRESSIONS["const-only"], Bindings(), n_samples=30, rng=0)
        ref = monte_carlo_predict_reference(
            EXPRESSIONS["const-only"], Bindings(), n_samples=30, rng=0
        )
        np.testing.assert_array_equal(vec.samples, ref.samples)
        assert np.all(vec.samples == vec.samples[0])

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo_predict(
                Param("x"), Bindings({"x": 1.0}), n_samples=10, engine="bogus"
            )


class TestCompileExpr:
    def test_from_bindings_derives_sampled_set(self):
        b = rich_bindings()
        expr = EXPRESSIONS["sub-mix"]
        plan = compile_expr(expr, b)
        assert isinstance(plan, CompiledExpr)
        # Run-time nonzero-spread referenced parameters only.
        assert plan.sampled == ("bw", "load")
        # Everything else referenced stays bound.
        assert set(plan.bound) == {"work", "fixed"}

    def test_explicit_sampled_names(self):
        plan = compile_expr(Param("a") + Param("b"), ["a"])
        out = plan.evaluate({"a": np.array([1.0, 2.0])}, Bindings({"b": 10.0}))
        np.testing.assert_array_equal(out, [11.0, 12.0])

    def test_unknown_sampled_name_rejected(self):
        with pytest.raises(ValueError):
            compile_expr(Param("a"), ["not_referenced"])

    def test_unsupported_policy_raises(self):
        with pytest.raises(UnsupportedPolicyError):
            compile_expr(
                Max(Param("a"), Param("b")),
                ["a"],
                policy=EvalPolicy(max_strategy=MaxStrategy.MONTE_CARLO),
            )

    def test_missing_bound_parameter_errors_like_reference(self):
        plan = compile_expr(Param("a") + Param("b"), ["a"])
        with pytest.raises(KeyError):
            plan.evaluate({"a": np.array([1.0, 2.0])}, Bindings())


class TestPlanCache:
    def test_repeat_compile_hits_cache(self):
        clear_plan_cache()
        expr = EXPRESSIONS["max-nested"]
        p1 = compile_expr(expr, ["load", "bw"])
        p2 = compile_expr(expr, ["load", "bw"])
        assert p1 is p2
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_structurally_equal_expressions_share_plans(self):
        clear_plan_cache()
        compile_expr(Param("x") / Param("y"), ["x"])
        compile_expr(Param("x") / Param("y"), ["x"])  # a fresh but equal AST
        assert plan_cache_stats()["hits"] == 1

    def test_policy_is_part_of_the_key(self):
        clear_plan_cache()
        expr = Param("x") / Param("y")
        compile_expr(expr, ["x"])
        compile_expr(expr, ["x"], policy=EvalPolicy(relatedness=Relatedness.UNRELATED))
        assert plan_cache_stats()["misses"] == 2

    def test_cached_plan_sees_fresh_bindings(self):
        # The plan must not bake bound-parameter values in at compile
        # time: the Platform 2 loop rebinds NWS forecasts per run while
        # reusing one plan.
        clear_plan_cache()
        expr = Param("work") / Param("load")
        draws = {"load": np.array([0.5, 0.25])}
        plan = compile_expr(expr, ["load"])
        out1 = plan.evaluate(draws, Bindings({"work": 10.0}))
        plan2 = compile_expr(expr, ["load"])
        out2 = plan2.evaluate(draws, Bindings({"work": 20.0}))
        assert plan2 is plan
        np.testing.assert_array_equal(out1, [20.0, 40.0])
        np.testing.assert_array_equal(out2, [40.0, 80.0])
