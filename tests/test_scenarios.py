"""Tests for the YAML chaos-scenario suite.

Covers the data layer (YAML loading, spec validation, fault-window
shifting, per-policy elastic config synthesis), seeded end-to-end
reproducibility of :func:`run_scenario`, and the graceful-degradation
invariants on a small scenario under every policy.  The full-size
canned scenarios are exercised by ``benchmarks/bench_scenarios.py``.
"""

import pytest

from repro.serving.elastic import ForecastAwarePolicy, LoadAdaptivePolicy
from repro.serving.scenarios import (
    POLICIES,
    Scenario,
    builtin_scenarios,
    load_scenario,
    run_scenario,
)
from repro.serving.schedules import ConstantRate, FlashCrowdRate

yaml = pytest.importorskip("yaml")

SMALL = {
    "name": "small-surge",
    "description": "tiny flash crowd for fast regression runs",
    "seed": 5,
    "duration": 10.0,
    "warmup": 60.0,
    "clients": 8,
    "deadline": 5.0,
    "arrival": {
        "kind": "flash",
        "base": 30.0,
        "peak": 220.0,
        "start": 2.0,
        "rise": 1.0,
        "hold": 3.0,
        "fall": 1.0,
    },
    "cluster": {"workers": 2, "replication": 2},
    "elastic": {"min_workers": 1, "max_workers": 5, "provision_time": 1.0},
    "invariants": {
        "max_p99": 6.0,
        "latency_slo": 2.0,
        "disturbance_end": 7.0,
        "recovery_within": 15.0,
    },
    "surge": [2.0, 8.0],
}


class TestScenarioData:
    def test_builtins_ship_all_four_chaos_stories(self):
        assert builtin_scenarios() == [
            "diurnal-wave",
            "flash-crowd",
            "hot-shard",
            "rack-failure",
        ]

    @pytest.mark.parametrize("name", ["diurnal-wave", "flash-crowd", "hot-shard", "rack-failure"])
    def test_builtin_yaml_loads_clean(self, name):
        s = load_scenario(name)
        assert s.name == name
        assert s.duration > 0 and s.seed >= 0
        assert s.invariants.max_p99 > 0
        assert len(s.sizes) == 10  # fine-grained sharding for rebalances

    def test_load_scenario_by_path_and_unknown(self, tmp_path):
        path = tmp_path / "custom.yaml"
        path.write_text(yaml.safe_dump(SMALL))
        assert Scenario.from_yaml(path).name == "small-surge"
        assert load_scenario(str(path)).name == "small-surge"
        with pytest.raises(ValueError, match="unknown scenario"):
            load_scenario("no-such-story")

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        bad = dict(SMALL, typo_key=1)
        with pytest.raises(ValueError, match="unknown keys"):
            Scenario.from_dict(bad)
        missing = {k: v for k, v in SMALL.items() if k != "invariants"}
        with pytest.raises(ValueError, match="missing required key"):
            Scenario.from_dict(missing)

    def test_arrival_spec_builds_typed_schedule(self):
        s = Scenario.from_dict(SMALL)
        assert isinstance(s.arrival, FlashCrowdRate)
        assert s.arrival.peak == 220.0
        constant = Scenario.from_dict(
            dict(SMALL, arrival={"kind": "constant", "rate": 50.0})
        )
        assert isinstance(constant.arrival, ConstantRate)

    def test_fault_windows_shift_by_the_drive_offset(self):
        s = Scenario.from_dict(
            dict(SMALL, faults={"worker-0": [[2.0, 4.0]]})
        )
        plan = s.fault_plan(60.0)
        outage = plan.machine_crashes["worker-0"][0]
        assert (outage.start, outage.end) == (62.0, 64.0)
        assert Scenario.from_dict(SMALL).fault_plan(60.0) is None

    def test_elastic_config_per_policy(self):
        s = Scenario.from_dict(SMALL)
        assert s.elastic_config("static") is None  # the golden-path baseline
        reactive = s.elastic_config("reactive")
        assert isinstance(reactive.policy, LoadAdaptivePolicy)
        assert reactive.min_workers == 1 and reactive.max_workers == 5
        forecast = s.elastic_config("forecast")
        assert isinstance(forecast.policy, ForecastAwarePolicy)
        # Lead = provision_time + control_interval: a worker ordered on
        # the forecast is routable when the predicted load lands.
        assert forecast.policy.lead_time == pytest.approx(1.0 + 1.0)


class TestRunScenario:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            run_scenario(Scenario.from_dict(SMALL), "oracle")

    @pytest.fixture(scope="class")
    def reports(self):
        scenario = Scenario.from_dict(SMALL)
        return {policy: run_scenario(scenario, policy) for policy in POLICIES}

    @pytest.mark.parametrize("policy", POLICIES)
    def test_invariants_hold_under_every_policy(self, reports, policy):
        report = reports[policy]
        assert report.passed, report.violations
        assert report.errors == 0
        assert report.ok + report.shed == report.submitted > 0
        assert report.latency_p99 <= SMALL["invariants"]["max_p99"]

    def test_autoscaling_policies_actually_scale(self, reports):
        assert reports["static"].scale_ups == 0
        assert reports["static"].peak_workers == 2
        for policy in ("reactive", "forecast"):
            assert reports[policy].scale_ups >= 1, policy
            assert reports[policy].peak_workers > 2, policy

    def test_seeded_run_is_reproducible(self, reports):
        again = run_scenario(Scenario.from_dict(SMALL), "forecast")
        assert again.to_dict() == reports["forecast"].to_dict()

    def test_summary_mentions_verdict(self, reports):
        line = reports["forecast"].summary()
        assert "small-surge" in line and "PASS" in line
