"""Tests for repro.scheduling — allocation, strategies, service ranges."""

import numpy as np
import pytest

from repro.core.group_ops import MaxStrategy
from repro.core.stochastic import StochasticValue as SV
from repro.scheduling.allocation import (
    Allocation,
    allocate_inverse_time,
    completion_times,
    makespan,
)
from repro.scheduling.qos import ServiceRange
from repro.scheduling.strategies import (
    allocate_risk_averse,
    compare_strategies,
    risk_adjusted_time,
)

# Table 1's machines.
DED_A, DED_B = SV.point(10.0), SV.point(5.0)
PROD_A = SV.from_percent(12.0, 5.0)
PROD_B = SV.from_percent(12.0, 30.0)


class TestAllocateInverseTime:
    def test_dedicated_b_gets_twice_the_work(self):
        # Section 1.2: "machine B should receive twice as much work".
        alloc = allocate_inverse_time(90, [DED_A, DED_B])
        assert alloc.units == (30, 60)

    def test_equal_means_split_evenly(self):
        alloc = allocate_inverse_time(100, [PROD_A, PROD_B])
        assert alloc.units == (50, 50)

    def test_total_preserved_with_rounding(self):
        alloc = allocate_inverse_time(101, [DED_A, DED_B])
        assert alloc.total == 101

    def test_zero_units(self):
        alloc = allocate_inverse_time(0, [DED_A, DED_B])
        assert alloc.units == (0, 0)

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            allocate_inverse_time(-1, [DED_A])

    def test_empty_machines_rejected(self):
        with pytest.raises(ValueError):
            allocate_inverse_time(10, [])

    def test_nonpositive_effective_time_rejected(self):
        with pytest.raises(ValueError):
            allocate_inverse_time(10, [SV.point(0.0)])


class TestCompletionAndMakespan:
    def test_completion_times(self):
        alloc = allocate_inverse_time(90, [DED_A, DED_B])
        times = completion_times(alloc)
        assert times[0].mean == pytest.approx(300.0)
        assert times[1].mean == pytest.approx(300.0)

    def test_makespan_balanced(self):
        alloc = allocate_inverse_time(90, [DED_A, DED_B])
        span = makespan(alloc, MaxStrategy.BY_MEAN)
        assert span.mean == pytest.approx(300.0)

    def test_makespan_ignores_idle_machines(self):
        alloc = Allocation(units=(10, 0), effective_unit_times=(SV.point(1.0), SV.point(100.0)))
        span = makespan(alloc, MaxStrategy.BY_MEAN)
        assert span.mean == pytest.approx(10.0)

    def test_makespan_empty_allocation(self):
        alloc = Allocation(units=(0,), effective_unit_times=(SV.point(1.0),))
        assert makespan(alloc).mean == 0.0

    def test_makespan_variance_grows_with_unit_spread(self):
        tight = allocate_inverse_time(50, [PROD_A, PROD_A])
        loose = allocate_inverse_time(50, [PROD_B, PROD_B])
        assert makespan(loose, MaxStrategy.CLARK).spread > makespan(
            tight, MaxStrategy.CLARK
        ).spread


class TestRiskStrategies:
    def test_risk_adjusted_time(self):
        assert risk_adjusted_time(PROD_B, 0.0) == 12.0
        assert risk_adjusted_time(PROD_B, 1.0) == pytest.approx(15.6)

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            risk_adjusted_time(PROD_A, -0.5)

    def test_risk_averse_shifts_work_to_stable_machine(self):
        # Section 1.2: with stochastic information, a risk-averse
        # scheduler assigns more work to the low-variance machine A.
        neutral = allocate_risk_averse(100, [PROD_A, PROD_B], 0.0)
        averse = allocate_risk_averse(100, [PROD_A, PROD_B], 2.0)
        assert neutral.units == (50, 50)
        assert averse.units[0] > averse.units[1]

    def test_more_risk_aversion_more_shift(self):
        mild = allocate_risk_averse(1000, [PROD_A, PROD_B], 0.5)
        strong = allocate_risk_averse(1000, [PROD_A, PROD_B], 3.0)
        assert strong.units[0] > mild.units[0]

    def test_compare_strategies_rows(self):
        outcomes = compare_strategies(100, [PROD_A, PROD_B], lams=(0.0, 1.0), rng=0)
        assert [o.lam for o in outcomes] == [0.0, 1.0]
        assert all(o.predicted_makespan.mean > 0 for o in outcomes)

    def test_risk_aversion_reduces_makespan_uncertainty(self):
        outcomes = compare_strategies(200, [PROD_A, PROD_B], lams=(0.0, 3.0), rng=0)
        assert outcomes[1].predicted_makespan.spread < outcomes[0].predicted_makespan.spread


class TestServiceRange:
    def test_violation_probability_cost_metric(self):
        sr = ServiceRange(SV(100.0, 20.0))  # execution time
        assert sr.violation_probability(100.0) == pytest.approx(0.5)
        assert sr.violation_probability(1000.0) < 0.001
        assert sr.violation_probability(10.0) > 0.999

    def test_violation_probability_capacity_metric(self):
        sr = ServiceRange(SV(8.0, 2.0), higher_is_better=True)  # bandwidth
        assert sr.violation_probability(8.0) == pytest.approx(0.5)
        assert sr.violation_probability(2.0) < 0.001

    def test_guaranteed_bound_cost(self):
        sr = ServiceRange(SV(100.0, 20.0))
        bound = sr.guaranteed_bound(0.95)
        assert sr.violation_probability(bound) == pytest.approx(0.05, abs=1e-6)

    def test_guaranteed_bound_capacity(self):
        sr = ServiceRange(SV(8.0, 2.0), higher_is_better=True)
        bound = sr.guaranteed_bound(0.9)
        assert bound < 8.0
        assert sr.violation_probability(bound) == pytest.approx(0.1, abs=1e-6)

    def test_tolerates(self):
        # Section 1.2: poor performance tolerated a small percentage of
        # the time.
        sr = ServiceRange(SV(100.0, 20.0))
        assert sr.tolerates(sr.guaranteed_bound(0.95), 0.06)
        assert not sr.tolerates(sr.guaranteed_bound(0.95), 0.04)

    def test_point_value_degenerates(self):
        sr = ServiceRange(SV.point(50.0))
        assert sr.violation_probability(60.0) == 0.0
        assert sr.violation_probability(40.0) == 1.0
        assert sr.guaranteed_bound(0.99) == 50.0

    def test_invalid_confidence_rejected(self):
        sr = ServiceRange(SV(1.0, 0.1))
        with pytest.raises(ValueError):
            sr.guaranteed_bound(1.0)
        with pytest.raises(ValueError):
            sr.tolerates(1.0, 1.5)


class TestEmpiricalServiceRange:
    def _mc_value(self):
        from repro.core.empirical import EmpiricalValue

        rng = np.random.default_rng(0)
        return EmpiricalValue(rng.normal(100.0, 10.0, size=4000))

    def test_accepts_empirical_value(self):
        from repro.core.empirical import EmpiricalValue

        sr = ServiceRange(self._mc_value())
        assert isinstance(sr.value, EmpiricalValue)
        assert sr.violation_probability(100.0) == pytest.approx(0.5, abs=0.03)
        bound = sr.guaranteed_bound(0.95)
        assert sr.violation_probability(bound) == pytest.approx(0.05, abs=0.01)
        assert sr.tolerates(bound, 0.06)

    def test_empirical_point_cloud_degenerates(self):
        from repro.core.empirical import EmpiricalValue

        sr = ServiceRange(EmpiricalValue.point(50.0))
        assert sr.violation_probability(60.0) == 0.0
        assert sr.violation_probability(40.0) == 1.0
        assert sr.guaranteed_bound(0.99) == 50.0


class TestTailQuantile:
    def _model_case(self):
        from repro.structural.expr import Param
        from repro.structural.parameters import Bindings

        b = Bindings()
        b.bind("work", 50.0)
        b.bind_runtime("load", SV(0.5, 0.1))
        return Param("work") / Param("load"), b

    def test_matches_service_range_route(self):
        from repro.scheduling.qos import tail_quantile

        expr, b = self._model_case()
        direct = tail_quantile(expr, b, 0.95, n_samples=2000, rng=8)
        via_range = ServiceRange.from_expression(
            expr, b, n_samples=2000, rng=8
        ).guaranteed_bound(0.95)
        assert direct == via_range
        # The 95% bound sits above the mean prediction for a cost metric.
        assert direct > (50.0 / 0.5) * 0.9

    def test_tail_reflects_sampled_distribution(self):
        from repro.scheduling.qos import tail_quantile
        from repro.structural.montecarlo import monte_carlo_predict

        expr, b = self._model_case()
        mc = monte_carlo_predict(expr, b, n_samples=2000, rng=8)
        q = tail_quantile(expr, b, 0.95, n_samples=2000, rng=8)
        assert q == pytest.approx(mc.quantile(0.95))
        # 1/load is right-skewed: the sampled 95% bound exceeds the
        # symmetric-normal bound from the first-order summary.
        normal_bound = ServiceRange(mc.to_stochastic()).guaranteed_bound(0.95)
        assert q > normal_bound

    def test_higher_is_better_uses_lower_tail(self):
        from repro.scheduling.qos import tail_quantile

        expr, b = self._model_case()
        lo = tail_quantile(expr, b, 0.95, n_samples=2000, rng=8, higher_is_better=True)
        hi = tail_quantile(expr, b, 0.95, n_samples=2000, rng=8)
        assert lo < hi
