"""Tests for repro.util validation, tables, and RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn
from repro.util.tables import format_series, format_table
from repro.util.validation import (
    check_array_1d,
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)


class TestValidation:
    def test_check_finite_passes(self):
        assert check_finite(1.5, "x") == 1.5

    def test_check_finite_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="x"):
                check_finite(bad, "x")

    def test_check_positive(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-0.001, "x")

    def test_check_in_range_inclusive(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=(True, False))

    def test_check_in_range_message_names_argument(self):
        with pytest.raises(ValueError, match="omega"):
            check_in_range(5.0, "omega", 0.0, 2.0)

    def test_check_array_1d_flattens(self):
        arr = check_array_1d([[1.0, 2.0], [3.0, 4.0]], "a")
        assert arr.shape == (4,)

    def test_check_array_1d_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array_1d([], "a")

    def test_check_array_1d_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array_1d([1.0, float("nan")], "a")


class TestTables:
    def test_basic_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.0], [30, 4.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789]])
        assert "1.235" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_series(self):
        out = format_series("s", [1.0, 2.0], [3.0, 4.0])
        assert out.splitlines()[0] == "s"
        assert len(out.splitlines()) == 4

    def test_series_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("s", [1.0], [1.0, 2.0])


class TestRng:
    def test_as_generator_from_seed_is_deterministic(self):
        a = as_generator(42).random(3)
        b = as_generator(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_children_independent(self):
        kids = spawn(7, 3)
        assert len(kids) == 3
        draws = [k.random() for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn(7, 2)]
        b = [g.random() for g in spawn(7, 2)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)
