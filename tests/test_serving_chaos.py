"""Chaos soak: load-driven serving through a mid-stream sensor blackout.

All CPU sensors on Platform 1 go silent for a 100-second window while a
closed-loop driver keeps querying.  The server must keep answering —
quality tags degrade (fresh → stale → fallback) instead of requests
failing — and must return to ``fresh`` answers once telemetry resumes.
"""

import pytest

from repro.faults import FaultPlan, Outage
from repro.serving import ClosedLoop, ErrorResponse, LoadDriver, demo_server

OUTAGE_START = 100.0
OUTAGE_END = 200.0

CPU_RESOURCES = ("cpu:sparc10", "cpu:sparc2-a", "cpu:sparc2-b", "cpu:sparc5")


@pytest.fixture(scope="module")
def soak_report():
    faults = FaultPlan(
        sensor_dropouts={
            r: (Outage(OUTAGE_START, OUTAGE_END),) for r in CPU_RESOURCES
        }
    )
    server, _, _ = demo_server(duration=600.0, faults=faults, rng=7)
    driver = LoadDriver(
        server,
        server.models,
        ClosedLoop(clients=4, think_time=1.0),
        duration=300.0,  # sim window 60..360 spans the whole outage
        rng=7,
    )
    return server, driver.run()


class TestChaosSoak:
    def test_no_error_responses(self, soak_report):
        server, report = soak_report
        assert report.errors == 0
        assert not any(isinstance(r, ErrorResponse) for r in report.responses)
        assert server.metrics.counter("errors_total").value == 0

    def test_every_request_answered_with_a_typed_response(self, soak_report):
        _, report = soak_report
        assert report.submitted > 100
        assert report.ok + report.shed == report.submitted
        assert all(r.status in ("ok", "overloaded") for r in report.responses)

    def test_quality_degrades_during_the_outage(self, soak_report):
        _, report = soak_report
        during = [
            r
            for r in report.responses
            if r.ok and OUTAGE_START + 30.0 < r.completed < OUTAGE_END
        ]
        assert during, "no answers landed inside the outage window"
        # Well past the 15 s staleness threshold every consulted CPU
        # forecast is stale (or fallback), never silently fresh.
        assert all(r.quality in ("stale", "fallback") for r in during)
        assert all(r.staleness > 0.0 for r in during)

    def test_fresh_before_the_outage(self, soak_report):
        _, report = soak_report
        before = [r for r in report.responses if r.ok and r.completed < OUTAGE_START]
        assert before
        assert all(r.quality == "fresh" for r in before)

    def test_recovers_after_the_outage(self, soak_report):
        _, report = soak_report
        # One NWS period to re-measure plus one cache refresh interval.
        after = [r for r in report.responses if r.ok and r.completed > OUTAGE_END + 15.0]
        assert after, "no answers landed after the outage window"
        assert all(r.quality == "fresh" for r in after)

    def test_staleness_rises_then_resets(self, soak_report):
        _, report = soak_report
        ok = [r for r in report.responses if r.ok]
        during = [r for r in ok if OUTAGE_START + 30.0 < r.completed < OUTAGE_END]
        after = [r for r in ok if r.completed > OUTAGE_END + 15.0]
        assert max(r.staleness for r in during) > 30.0
        assert max(r.staleness for r in after) < 15.0

    def test_metrics_account_for_degradation(self, soak_report):
        server, report = soak_report
        snap = server.metrics.snapshot()["counters"]
        assert snap["quality_stale"] + snap.get("quality_fallback", 0) > 0
        assert snap["quality_fresh"] > 0
        assert snap["responses_ok"] == report.ok
