"""Chaos regression: precision shedding under a flash crowd.

The graceful-degradation claim of adaptive sampling: when a surge
overloads a fixed fleet, loosening precision targets (cheaper answers,
tagged on responses) drains the backlog faster, so strictly fewer
requests are turned away than the fixed-budget baseline sheds — while
the latency invariant still holds.
"""

import pytest

from repro.serving.scenarios import Scenario, run_scenario

yaml = pytest.importorskip("yaml")

#: A flash crowd deliberately too steep for the static two-worker fleet
#: (~266 req/s aggregate at full batching), so the fixed-budget baseline
#: must shed.  Static policy: no autoscaler to absorb the surge, which
#: isolates the precision-shedding effect.
OVERLOAD = {
    "name": "precision-crowd",
    "description": "steep surge against a static fleet; precision shedding drains it",
    "seed": 7,
    "duration": 16.0,
    "warmup": 60.0,
    "clients": 32,
    "deadline": 3.0,
    "arrival": {
        "kind": "flash",
        "base": 60.0,
        "peak": 520.0,
        "start": 2.0,
        "rise": 2.0,
        "hold": 6.0,
        "fall": 2.0,
    },
    "cluster": {"workers": 2, "replication": 2},
    "invariants": {
        "max_p99": 4.0,
        "latency_slo": 2.0,
        "disturbance_end": 12.0,
        "recovery_within": 30.0,
    },
    "surge": [2.0, 12.0],
}


@pytest.fixture(scope="module")
def baseline():
    return run_scenario(Scenario.from_dict(OVERLOAD), "static")


@pytest.fixture(scope="module")
def adaptive():
    return run_scenario(Scenario.from_dict(OVERLOAD), "static", precision="p95:2%")


class TestPrecisionSheddingUnderFlashCrowd:
    def test_baseline_actually_overloads(self, baseline):
        assert baseline.shed > 0, "scenario must overload the fixed-budget fleet"
        assert baseline.precision_degraded == 0
        assert baseline.draws_saved_fraction == 0.0

    def test_sheds_strictly_decrease_with_precision_shedding(self, baseline, adaptive):
        assert adaptive.shed < baseline.shed

    def test_p99_stays_within_bound(self, adaptive):
        assert adaptive.latency_p99 <= OVERLOAD["invariants"]["max_p99"]
        assert adaptive.errors == 0

    def test_degradation_happened_and_was_tagged(self, adaptive):
        # The surge must have pushed the queue past a ladder rung at
        # least once, and every loosened answer carries the tag (the
        # report counts only tagged responses).
        assert adaptive.precision_degraded > 0

    def test_adaptive_run_saves_draws(self, adaptive):
        assert adaptive.draws_saved_fraction > 0.3

    def test_adaptive_run_is_reproducible(self, adaptive):
        again = run_scenario(
            Scenario.from_dict(OVERLOAD), "static", precision="p95:2%"
        )
        assert again.to_dict() == adaptive.to_dict()
