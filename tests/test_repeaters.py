"""Tests for repro.structural.repeaters — sequential stopping rules.

The property tests check the headline statistical contract: when a rule
votes converged on samples from a known closed-form distribution, the
achieved confidence-interval half-width really is within the requested
tolerance, and the hard ``max_samples`` cap is never exceeded.
"""

import inspect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stochastic import StochasticValue
from repro.structural.expr import DEFAULT_MC_SAMPLES, EvalPolicy, Param
from repro.structural.montecarlo import (
    AdaptiveEmpirical,
    monte_carlo_predict,
)
from repro.structural.parameters import Bindings
from repro.structural.repeaters import (
    STOPPING_RULES,
    PrecisionTarget,
    SampleBufferPool,
    SequentialProbe,
    chunk_schedule,
)


def adaptive_bindings():
    b = Bindings()
    b.bind("c", 10.0)
    b.bind_runtime("load", StochasticValue(0.5, 0.05))
    return b


class TestPrecisionTarget:
    def test_parse_relative(self):
        t = PrecisionTarget.parse("p95:2%")
        assert t.metric == "p95" and t.rel_tol == pytest.approx(0.02)
        assert t.abs_tol is None and t.rule == "ci"

    def test_parse_absolute_with_rule(self):
        t = PrecisionTarget.parse("mean:0.05:composite")
        assert t.metric == "mean" and t.abs_tol == pytest.approx(0.05)
        assert t.rel_tol is None and t.rule == "composite"

    def test_parse_overrides(self):
        t = PrecisionTarget.parse("p99:1%", max_samples=8000, min_samples=500)
        assert t.max_samples == 8000 and t.min_samples == 500

    @pytest.mark.parametrize("bad", ["", "p95", "p95:x%", "p95:2%:ci:extra", ":2%"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            PrecisionTarget.parse(bad)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"metric": "p0"},
            {"metric": "p100"},
            {"metric": "median"},
            {"rel_tol": None, "abs_tol": None},
            {"rel_tol": -0.1},
            {"abs_tol": 0.0, "rel_tol": None},
            {"confidence": 1.0},
            {"rule": "magic"},
            {"min_samples": 4},
            {"max_samples": 10, "min_samples": 20},
            {"growth": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PrecisionTarget(**kwargs)

    def test_tolerance_takes_the_looser_bound(self):
        t = PrecisionTarget(metric="mean", rel_tol=0.01, abs_tol=0.5)
        assert t.tolerance(10.0) == pytest.approx(0.5)  # abs wins at small estimates
        assert t.tolerance(100.0) == pytest.approx(1.0)  # rel wins at large ones

    def test_degraded_scales_tolerances(self):
        t = PrecisionTarget(metric="mean", rel_tol=0.01, abs_tol=0.5)
        d = t.degraded(4.0)
        assert d.rel_tol == pytest.approx(0.04) and d.abs_tol == pytest.approx(2.0)
        assert t.degraded(1.0) is t
        with pytest.raises(ValueError):
            t.degraded(0.5)

    def test_describe_and_roundtrip(self):
        t = PrecisionTarget.parse("p95:2%:composite")
        assert t.describe() == "p95±2%@0.95/composite"
        assert PrecisionTarget.from_dict(t.to_dict()) == t


class TestChunkSchedule:
    def test_doubles_and_ends_at_cap(self):
        assert chunk_schedule(256, 2000) == [256, 512, 1024, 2000]

    def test_single_chunk_when_min_equals_max(self):
        assert chunk_schedule(500, 500) == [500]

    def test_strictly_increasing_and_capped(self):
        sched = chunk_schedule(8, 10_000, growth=1.5)
        assert sched == sorted(set(sched))
        assert sched[0] == 8 and sched[-1] == 10_000

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            chunk_schedule(100, 50)
        with pytest.raises(ValueError):
            chunk_schedule(8, 100, growth=1.0)


class TestSampleBufferPool:
    def test_reuses_exact_capacity(self):
        pool = SampleBufferPool()
        a = pool.acquire(128)
        pool.release(a)
        b = pool.acquire(128)
        assert b is a
        assert pool.stats() == {"hits": 1, "misses": 1, "pooled": 0}

    def test_different_capacities_do_not_alias(self):
        pool = SampleBufferPool()
        a = pool.acquire(64)
        pool.release(a)
        b = pool.acquire(128)
        assert b is not a and b.shape == (128,)
        assert pool.stats()["misses"] == 2


class TestSequentialProbe:
    def test_records_accumulate_and_converged_flips(self):
        rng = np.random.default_rng(0)
        target = PrecisionTarget(metric="mean", abs_tol=0.05, rel_tol=None, min_samples=64)
        probe = SequentialProbe(target, rng)
        assert not probe.converged
        for total in chunk_schedule(64, 4096):
            record = probe.assess(rng.normal(10.0, 1.0, size=total))
            if record.converged:
                break
        assert probe.converged
        assert len(probe.records) >= 1
        outcome = probe.outcome(budget=4096)
        assert outcome.converged and outcome.draws <= 4096

    def test_outcome_before_assess_raises(self):
        probe = SequentialProbe(PrecisionTarget())
        with pytest.raises(ValueError):
            probe.outcome()

    def test_assess_requires_enough_samples(self):
        probe = SequentialProbe(PrecisionTarget())
        with pytest.raises(ValueError):
            probe.assess(np.arange(4.0))

    def test_rule_checks_do_not_touch_caller_stream(self):
        # Bootstrap resampling runs on a spawned child stream: the
        # caller's generator must be at the same state whether the rule
        # needed randomness or not.
        target = PrecisionTarget(metric="p95", rel_tol=0.02, rule="bootstrap")
        samples = np.random.default_rng(1).normal(10.0, 1.0, size=512)
        rng_a = np.random.default_rng(7)
        SequentialProbe(target, rng_a).assess(samples)
        rng_b = np.random.default_rng(7)
        assert rng_a.random() == rng_b.random()

    def test_deterministic_votes_under_fixed_seed(self):
        target = PrecisionTarget(metric="p95", rel_tol=0.05, rule="composite")
        samples = np.random.default_rng(3).normal(20.0, 2.0, size=1024)
        rec_a = SequentialProbe(target, np.random.default_rng(9)).assess(samples)
        rec_b = SequentialProbe(target, np.random.default_rng(9)).assess(samples)
        assert rec_a == rec_b
        assert {v.rule for v in rec_a.votes} == {"ci", "bootstrap", "hdi", "ks"}


class TestStoppingRuleContract:
    """Achieved precision vs requested, on closed-form distributions."""

    @pytest.mark.parametrize("rule", STOPPING_RULES)
    @pytest.mark.parametrize("metric", ["mean", "std", "p95"])
    def test_half_width_within_tolerance_at_convergence(self, rule, metric):
        rng = np.random.default_rng(42)
        target = PrecisionTarget(
            metric=metric, rel_tol=0.05, rule=rule, max_samples=65_536, min_samples=256
        )
        probe = SequentialProbe(target, rng)
        draws = np.empty(0)
        for total in chunk_schedule(256, 65_536):
            draws = np.concatenate([draws, rng.normal(50.0, 5.0, size=total - draws.size)])
            record = probe.assess(draws)
            if record.converged:
                break
        assert probe.converged, f"{rule}/{metric} never converged within 65536 draws"
        if rule == "ks":
            # KS judges whole-distribution stability, not interval
            # width: its contract is the statistic against the critical
            # value at the stated confidence.
            (vote,) = record.votes
            assert vote.stat <= vote.threshold
        else:
            # Width rules: the achieved half-width is within the
            # tolerance computed at the converged estimate.  The hdi
            # and bootstrap statistics approximate the closed-form
            # half-width, so allow slack between the two estimators.
            slack = 1.0 + 1e-12 if rule in ("ci", "composite") else 1.5
            assert record.half_width <= record.tolerance * slack

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rel_tol=st.floats(0.01, 0.2),
        rule=st.sampled_from(["ci", "bootstrap", "hdi"]),
    )
    def test_width_rules_never_exceed_cap_and_honour_tolerance(self, seed, rel_tol, rule):
        rng = np.random.default_rng(seed)
        target = PrecisionTarget(
            metric="mean", rel_tol=rel_tol, rule=rule, max_samples=16_384, min_samples=64
        )
        probe = SequentialProbe(target, rng)
        draws = np.empty(0)
        for total in chunk_schedule(64, target.max_samples, target.growth):
            assert total <= target.max_samples
            draws = np.concatenate([draws, rng.normal(10.0, 1.0, size=total - draws.size)])
            if probe.assess(draws).converged:
                break
        outcome = probe.outcome()
        assert outcome.draws <= target.max_samples
        if outcome.converged and rule == "ci":
            # For the closed-form rule, the decision statistic IS the
            # reported half-width, so the contract is exact.
            assert outcome.half_width <= outcome.tolerance

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_ks_converges_on_stationary_stream(self, seed):
        rng = np.random.default_rng(seed)
        target = PrecisionTarget(
            metric="mean", rel_tol=0.5, rule="ks", max_samples=8192, min_samples=512
        )
        probe = SequentialProbe(target, rng)
        record = probe.assess(rng.normal(5.0, 0.5, size=4096))
        # One stationary stream split in halves: KS should accept at the
        # 95% level for the vast majority of seeds; assert the statistic
        # is at least computed against the right threshold.
        (vote,) = record.votes
        assert vote.rule == "ks" and vote.threshold > 0.0
        assert vote.converged == (vote.stat <= vote.threshold)


class TestAdaptiveMonteCarloPredict:
    def test_returns_outcome_and_respects_cap(self):
        expr = Param("c") / Param("load")
        target = PrecisionTarget.parse("p95:5%", min_samples=64, max_samples=2000)
        emp = monte_carlo_predict(
            expr, adaptive_bindings(), rng=5, precision=target
        )
        assert isinstance(emp, AdaptiveEmpirical)
        assert emp.outcome.draws == emp.samples.size <= 2000
        assert emp.outcome.budget == 2000
        assert emp.outcome.chunks[-1].draws == emp.outcome.draws

    def test_adaptive_run_is_bit_reproducible(self):
        expr = Param("c") / Param("load")
        target = PrecisionTarget.parse("p95:2%", min_samples=64)
        a = monte_carlo_predict(expr, adaptive_bindings(), rng=6, precision=target)
        b = monte_carlo_predict(expr, adaptive_bindings(), rng=6, precision=target)
        assert np.array_equal(a.samples, b.samples)
        assert a.outcome.to_dict() == b.outcome.to_dict()

    def test_precision_none_is_bit_identical_to_fixed(self):
        expr = Param("c") / Param("load")
        fixed = monte_carlo_predict(expr, adaptive_bindings(), n_samples=777, rng=8)
        again = monte_carlo_predict(
            expr, adaptive_bindings(), n_samples=777, rng=8, precision=None
        )
        assert not isinstance(fixed, AdaptiveEmpirical)
        assert np.array_equal(fixed.samples, again.samples)

    def test_unconverged_target_stops_at_cap_with_provenance(self):
        expr = Param("c") / Param("load")
        target = PrecisionTarget(
            metric="p95", rel_tol=1e-6, max_samples=512, min_samples=64
        )
        emp = monte_carlo_predict(expr, adaptive_bindings(), rng=9, precision=target)
        assert emp.samples.size == 512
        assert not emp.outcome.converged
        assert emp.outcome.half_width > emp.outcome.tolerance


class TestMcSamplesDefaultUnification:
    """One documented constant behind every fixed-budget entry point."""

    def test_constant_value(self):
        assert DEFAULT_MC_SAMPLES == 2000

    def test_eval_policy_default(self):
        assert EvalPolicy().mc_samples == DEFAULT_MC_SAMPLES

    def test_monte_carlo_predict_default(self):
        sig = inspect.signature(monte_carlo_predict)
        assert sig.parameters["n_samples"].default == DEFAULT_MC_SAMPLES

    def test_experiment_runner_defaults(self):
        from repro.experiments.platform1 import run_platform1
        from repro.experiments.platform2 import run_platform2

        for fn in (run_platform1, run_platform2):
            sig = inspect.signature(fn)
            assert sig.parameters["mc_samples"].default == DEFAULT_MC_SAMPLES, fn
