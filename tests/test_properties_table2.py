"""Property-based tests for the Table 2 stochastic arithmetic.

Hand-rolled seeded generators (no extra dependency) draw hundreds of
random stochastic values, value lists and expression trees, and check
the *algebra* the paper relies on rather than individual examples:

* commutativity of stochastic ``+`` and ``*`` in both relatedness
  regimes;
* the point-value rows of Table 2 (a point operand degenerates to
  exact shift/scale arithmetic, zero/one are identities);
* the related rule is never tighter than the unrelated rule — the
  conservative regime must not over-smooth (Section 2.3.1);
* bounds for every group-``Max`` strategy (Section 2.3.3) and the
  ``Min = -Max(-v)`` duality;
* closed-form evaluation and the vectorised Monte Carlo engine agree on
  random expression trees — bit-identical draws, elementwise-equal
  propagation (``engine="vectorised"`` vs ``engine="reference"``).

Failures print the offending seed, so every case is reproducible.
"""

import math

import numpy as np
import pytest

from repro.core.arithmetic import (
    Relatedness,
    add,
    divide,
    multiply,
    scale,
    shift,
    subtract,
    sum_stochastic,
)
from repro.core.group_ops import MaxStrategy, stochastic_max, stochastic_min
from repro.core.stochastic import StochasticValue
from repro.structural.engine import compile_expr
from repro.structural.expr import Add, Div, EvalPolicy, Max, Mul, Param, Sub, Sum, as_expr
from repro.structural.montecarlo import monte_carlo_predict
from repro.structural.parameters import Bindings

N_CASES = 200
BOTH_REGIMES = (Relatedness.RELATED, Relatedness.UNRELATED)

# ----------------------------------------------------------------------
# Hand-rolled seeded generators
# ----------------------------------------------------------------------


def gen_value(rng, *, point_prob: float = 0.15, lo: float = -50.0, hi: float = 50.0):
    """A random stochastic value; occasionally an exact point value."""
    mean = float(rng.uniform(lo, hi))
    if rng.random() < point_prob:
        return StochasticValue.point(mean)
    return StochasticValue(mean, float(rng.uniform(0.0, 10.0)))


def gen_positive_value(rng):
    """A stochastic value safely bounded away from zero (divisible)."""
    mean = float(rng.uniform(0.5, 20.0))
    return StochasticValue(mean, float(rng.uniform(0.0, 0.2 * mean)))


def gen_values(rng, n_max: int = 6):
    return [gen_value(rng) for _ in range(int(rng.integers(1, n_max + 1)))]


def cases(n: int = N_CASES):
    """Seeds for ``n`` independent generator instances."""
    return [(seed, np.random.default_rng(seed)) for seed in range(n)]


def assert_close(a: StochasticValue, b: StochasticValue, seed, tol: float = 1e-9):
    assert math.isclose(a.mean, b.mean, rel_tol=tol, abs_tol=tol), (
        f"seed {seed}: means differ: {a} vs {b}"
    )
    assert math.isclose(a.spread, b.spread, rel_tol=tol, abs_tol=tol), (
        f"seed {seed}: spreads differ: {a} vs {b}"
    )


# ----------------------------------------------------------------------
# Commutativity
# ----------------------------------------------------------------------


class TestCommutativity:
    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_addition_commutes(self, regime):
        for seed, rng in cases():
            x, y = gen_value(rng), gen_value(rng)
            assert_close(add(x, y, regime), add(y, x, regime), seed)

    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_multiplication_commutes(self, regime):
        for seed, rng in cases():
            x, y = gen_value(rng), gen_value(rng)
            assert_close(multiply(x, y, regime), multiply(y, x, regime), seed)

    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_sum_is_permutation_invariant(self, regime):
        for seed, rng in cases():
            vals = gen_values(rng)
            shuffled = [vals[i] for i in rng.permutation(len(vals))]
            assert_close(
                sum_stochastic(vals, regime), sum_stochastic(shuffled, regime), seed
            )


# ----------------------------------------------------------------------
# Point-value rows of Table 2
# ----------------------------------------------------------------------


class TestPointIdentities:
    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_adding_a_point_is_a_shift(self, regime):
        for seed, rng in cases():
            x = gen_value(rng)
            p = float(rng.uniform(-20.0, 20.0))
            got = add(x, StochasticValue.point(p), regime)
            assert_close(got, shift(x, p), seed)
            assert got.spread == x.spread  # spread untouched by a shift

    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_multiplying_by_a_point_is_a_scale(self, regime):
        for seed, rng in cases():
            x = gen_value(rng)
            p = float(rng.uniform(-5.0, 5.0))
            got = multiply(x, StochasticValue.point(p), regime)
            assert_close(got, scale(x, p), seed)
            assert got.spread == pytest.approx(abs(p) * x.spread)

    @pytest.mark.parametrize("regime", BOTH_REGIMES)
    def test_zero_and_one_are_identities(self, regime):
        for seed, rng in cases():
            x = gen_value(rng)
            assert_close(add(x, StochasticValue.point(0.0), regime), x, seed)
            assert_close(multiply(x, StochasticValue.point(1.0), regime), x, seed)

    def test_subtracting_itself_centres_on_zero(self):
        for seed, rng in cases():
            x = gen_value(rng)
            diff = subtract(x, x, Relatedness.UNRELATED)
            assert diff.mean == pytest.approx(0.0, abs=1e-9), f"seed {seed}"

    def test_dividing_by_a_point_is_an_exact_scale(self):
        for seed, rng in cases():
            x = gen_value(rng)
            p = float(rng.uniform(0.5, 5.0))
            assert_close(
                divide(x, StochasticValue.point(p)), scale(x, 1.0 / p), seed
            )


# ----------------------------------------------------------------------
# Related >= unrelated (the conservative regime is conservative)
# ----------------------------------------------------------------------


class TestSpreadOrdering:
    def test_related_addition_is_never_tighter(self):
        for seed, rng in cases():
            x, y = gen_value(rng), gen_value(rng)
            rel = add(x, y, Relatedness.RELATED)
            unrel = add(x, y, Relatedness.UNRELATED)
            assert rel.spread >= unrel.spread - 1e-12, f"seed {seed}"
            assert rel.mean == pytest.approx(unrel.mean)

    def test_related_multiplication_is_never_tighter(self):
        for seed, rng in cases():
            x, y = gen_value(rng), gen_value(rng)
            rel = multiply(x, y, Relatedness.RELATED)
            unrel = multiply(x, y, Relatedness.UNRELATED)
            if unrel.is_point and not rel.is_point:
                continue  # zero-mean convention zeroes the unrelated product
            assert rel.spread >= unrel.spread - 1e-12, f"seed {seed}"

    def test_related_sum_is_never_tighter(self):
        for seed, rng in cases():
            vals = gen_values(rng)
            rel = sum_stochastic(vals, Relatedness.RELATED)
            unrel = sum_stochastic(vals, Relatedness.UNRELATED)
            assert rel.spread >= unrel.spread - 1e-12, f"seed {seed}"


# ----------------------------------------------------------------------
# Group Max / Min bounds (Section 2.3.3)
# ----------------------------------------------------------------------


class TestGroupBounds:
    def test_by_mean_max_attains_the_largest_mean(self):
        for seed, rng in cases():
            vals = gen_values(rng)
            got = stochastic_max(vals, MaxStrategy.BY_MEAN)
            assert got.mean == max(v.mean for v in vals), f"seed {seed}"
            assert got in vals  # selection, not synthesis

    def test_by_endpoint_max_attains_the_largest_endpoint(self):
        for seed, rng in cases():
            vals = gen_values(rng)
            got = stochastic_max(vals, MaxStrategy.BY_ENDPOINT)
            assert got.hi == max(v.hi for v in vals), f"seed {seed}"

    def test_clark_max_dominates_every_mean(self):
        for seed, rng in cases():
            vals = gen_values(rng)
            got = stochastic_max(vals, MaxStrategy.CLARK)
            # E[max(X, Y)] >= max(E[X], E[Y]) for the moment-matched fold.
            assert got.mean >= max(v.mean for v in vals) - 1e-9, f"seed {seed}"

    def test_monte_carlo_max_dominates_every_mean(self):
        for seed, rng in cases(40):  # sampling-based, keep it quick
            vals = gen_values(rng)
            got = stochastic_max(vals, MaxStrategy.MONTE_CARLO, rng=seed, n_samples=4000)
            # Sampling noise scales with the spreads in play.
            slack = 0.1 * max(v.spread for v in vals) + 1e-6
            assert got.mean >= max(v.mean for v in vals) - slack, f"seed {seed}"

    @pytest.mark.parametrize(
        "strategy", (MaxStrategy.BY_MEAN, MaxStrategy.BY_ENDPOINT, MaxStrategy.CLARK)
    )
    def test_min_is_negated_max_of_negations(self, strategy):
        for seed, rng in cases():
            vals = gen_values(rng)
            got = stochastic_min(vals, strategy)
            expected = -stochastic_max([-v for v in vals], strategy)
            assert_close(got, expected, seed)

    def test_max_of_a_singleton_is_itself(self):
        for seed, rng in cases(50):
            v = gen_value(rng)
            for strategy in (MaxStrategy.BY_MEAN, MaxStrategy.BY_ENDPOINT, MaxStrategy.CLARK):
                assert_close(stochastic_max([v], strategy), v, seed)


# ----------------------------------------------------------------------
# Random expression trees: closed form vs the vectorised engine
# ----------------------------------------------------------------------


def gen_tree(rng, params: list[str], depth: int = 0):
    """A random expression tree over ``params``.

    Division is restricted to positive-mean denominators (the demo
    models divide only by availabilities), matching the domain the
    engine serves.
    """
    if depth >= 3 or rng.random() < 0.3:
        if rng.random() < 0.7:
            return Param(params[int(rng.integers(len(params)))])
        return as_expr(float(rng.uniform(0.5, 10.0)))
    kind = int(rng.integers(5))
    left = gen_tree(rng, params, depth + 1)
    right = gen_tree(rng, params, depth + 1)
    if kind == 0:
        return Add(left, right)
    if kind == 1:
        return Sub(left, right)
    if kind == 2:
        return Mul(left, right)
    if kind == 3:
        return Max(left, right, gen_tree(rng, params, depth + 1))
    return Sum(left, right, as_expr(float(rng.uniform(0.0, 5.0))))


def gen_bindings(rng, params: list[str]) -> Bindings:
    b = Bindings()
    for name in params:
        mean = float(rng.uniform(0.5, 10.0))
        spread = float(rng.uniform(0.01, 0.3 * mean))
        b.bind_runtime(name, StochasticValue(mean, spread))
    return b


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "policy",
        (
            EvalPolicy(),
            EvalPolicy(relatedness=Relatedness.UNRELATED),
            EvalPolicy(max_strategy=MaxStrategy.BY_ENDPOINT),
            EvalPolicy(max_strategy=MaxStrategy.CLARK),
        ),
        ids=("related-by-mean", "unrelated", "by-endpoint", "clark"),
    )
    def test_vectorised_engine_matches_reference_loop(self, policy):
        params = ["p0", "p1", "p2"]
        for seed, rng in cases(30):
            expr = gen_tree(rng, params)
            bindings = gen_bindings(rng, params)
            vec = monte_carlo_predict(
                expr, bindings, n_samples=256, rng=seed, policy=policy,
                engine="vectorised",
            )
            ref = monte_carlo_predict(
                expr, bindings, n_samples=256, rng=seed, policy=policy,
                engine="reference",
            )
            np.testing.assert_allclose(
                vec.samples, ref.samples, rtol=1e-12, atol=1e-12,
                err_msg=f"seed {seed}: engines disagree on {expr!r}",
            )

    def test_compiled_plan_matches_closed_form_on_point_bindings(self):
        # With every parameter collapsed to a point, Monte Carlo output
        # must equal the closed-form evaluation exactly, draw for draw.
        params = ["p0", "p1"]
        for seed, rng in cases(30):
            expr = gen_tree(rng, params)
            b = Bindings()
            point = {}
            for name in params:
                point[name] = float(rng.uniform(0.5, 10.0))
                b.bind_runtime(name, StochasticValue.point(point[name]))
            closed = expr.evaluate(b, EvalPolicy())
            mc = monte_carlo_predict(expr, b, n_samples=16, rng=seed)
            np.testing.assert_allclose(mc.samples, closed.mean, rtol=1e-12)

    def test_division_trees_agree_on_positive_domains(self):
        for seed, rng in cases(30):
            num = gen_tree(rng, ["p0", "p1"])
            expr = Div(num, Param("avail"))
            b = gen_bindings(rng, ["p0", "p1"])
            b.bind_runtime("avail", gen_positive_value(rng))
            clip = {"avail": (0.05, float("inf"))}
            vec = monte_carlo_predict(
                expr, b, n_samples=256, rng=seed, clip=clip, engine="vectorised"
            )
            ref = monte_carlo_predict(
                expr, b, n_samples=256, rng=seed, clip=clip, engine="reference"
            )
            np.testing.assert_allclose(vec.samples, ref.samples, rtol=1e-12)

    def test_plans_are_reused_across_equal_trees(self):
        from repro.structural.engine import clear_plan_cache, plan_cache_stats

        clear_plan_cache()
        expr = Add(Param("p0"), Mul(Param("p1"), as_expr(2.0)))
        compile_expr(expr, ("p0", "p1"), policy=EvalPolicy())
        compile_expr(
            Add(Param("p0"), Mul(Param("p1"), as_expr(2.0))), ("p0", "p1"), policy=EvalPolicy()
        )
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
