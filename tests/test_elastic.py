"""Unit and chaos tests for elastic autoscaling.

Covers the pieces the scenario suite exercises only end to end: rate
schedules and their bit-reproducible arrival processes, the three
placement policies behind one interface, autoscaler control mechanics
(clamps, cooldown, the never-drain-against-provisioning guard), the
cluster's elastic membership operations, the crash-during-drain
exactly-once regression, and byte-identical seeded traces carrying
elastic decision spans with forecast provenance.
"""

import json
import math

import pytest

from repro.faults import FaultPlan
from repro.obs import Tracer, trace_to_dict
from repro.serving import (
    ClusterConfig,
    ConstantRate,
    DiurnalRate,
    ElasticConfig,
    FlashCrowdRate,
    ForecastAwarePolicy,
    LoadAdaptivePolicy,
    LoadDriver,
    OpenLoop,
    PiecewiseRate,
    ServerConfig,
    StaticPolicy,
    demo_cluster,
    policy_by_name,
    schedule_from_spec,
)
from repro.serving.elastic import ClusterSignals

FAST_WORKER = ServerConfig(service_time_base=0.002, service_time_per_request=0.0005)


def signals(**overrides) -> ClusterSignals:
    base = dict(
        t=10.0,
        arrival_rate=100.0,
        shed_rate=0.0,
        queue_depth=0,
        active=2,
        pending=0,
        capacity_per_worker=100.0,
        per_shard_rate={},
    )
    base.update(overrides)
    return ClusterSignals(**base)


class TestSchedules:
    def test_constant_is_flat(self):
        s = ConstantRate(rate=50.0)
        assert s.rate_at(0.0) == s.rate_at(1e6) == s.max_rate == 50.0

    def test_diurnal_peaks_and_troughs(self):
        s = DiurnalRate(base=100.0, amplitude=60.0, period=40.0)
        assert s.rate_at(10.0) == pytest.approx(160.0)  # quarter period: crest
        assert s.rate_at(30.0) == pytest.approx(40.0)  # three quarters: trough
        assert s.max_rate == 160.0

    def test_diurnal_trough_must_stay_positive(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalRate(base=50.0, amplitude=50.0, period=60.0)

    def test_flash_crowd_trapezoid(self):
        s = FlashCrowdRate(base=10.0, peak=110.0, start=5.0, rise=4.0, hold=6.0, fall=5.0)
        assert s.rate_at(0.0) == 10.0
        assert s.rate_at(7.0) == pytest.approx(60.0)  # halfway up the ramp
        assert s.rate_at(12.0) == 110.0  # holding
        assert s.rate_at(s.surge_end) == 10.0
        assert s.max_rate == 110.0

    def test_piecewise_steps_and_validation(self):
        s = PiecewiseRate(segments=((0.0, 10.0), (5.0, 40.0)))
        assert s.rate_at(4.9) == 10.0 and s.rate_at(5.0) == 40.0
        assert s.max_rate == 40.0
        with pytest.raises(ValueError, match="t=0"):
            PiecewiseRate(segments=((1.0, 10.0),))
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseRate(segments=((0.0, 10.0), (0.0, 20.0)))

    def test_spec_round_trip_and_errors(self):
        s = schedule_from_spec({"kind": "flash", "base": 10, "peak": 100,
                               "start": 5, "rise": 2, "hold": 3, "fall": 2})
        assert isinstance(s, FlashCrowdRate)
        with pytest.raises(ValueError, match="kind"):
            schedule_from_spec({"rate": 10})
        with pytest.raises(ValueError, match="unknown arrival kind"):
            schedule_from_spec({"kind": "sawtooth"})
        with pytest.raises(ValueError, match="does not accept"):
            schedule_from_spec({"kind": "constant", "rate": 10, "peak": 20})


class TestArrivalReproducibility:
    """Satellite: schedules must be bit-reproducible from a seed."""

    def make_driver(self, rate, seed):
        cluster, _, _ = demo_cluster(
            duration=300.0,
            sizes=(600,),
            config=ClusterConfig(n_workers=2, worker=FAST_WORKER),
            rng=3,
        )
        return LoadDriver(
            cluster, cluster.models, OpenLoop(rate, clients=4), duration=20.0, rng=seed
        )

    @pytest.mark.parametrize(
        "rate",
        [
            DiurnalRate(base=40.0, amplitude=20.0, period=10.0),
            FlashCrowdRate(base=10.0, peak=80.0, start=5.0, rise=2.0, hold=4.0, fall=2.0),
        ],
        ids=["diurnal", "flash"],
    )
    def test_thinned_arrivals_are_bit_identical(self, rate):
        a = self.make_driver(rate, seed=5)
        b = self.make_driver(rate, seed=5)
        ta, tb = a._arrival_times(60.0), b._arrival_times(60.0)
        assert ta == tb and len(ta) > 50
        c = self.make_driver(rate, seed=6)
        assert c._arrival_times(60.0) != ta

    def test_constant_schedule_replays_plain_rate_draws(self):
        # ConstantRate goes through the thinning loop, so it is not
        # draw-for-draw identical to the plain-float path — but the
        # process itself must still be seed-stable.
        sched = self.make_driver(ConstantRate(rate=30.0), seed=9)
        again = self.make_driver(ConstantRate(rate=30.0), seed=9)
        assert sched._arrival_times(60.0) == again._arrival_times(60.0)

    def test_scheduled_drive_is_reproducible_end_to_end(self):
        rate = DiurnalRate(base=60.0, amplitude=30.0, period=10.0)
        runs = []
        for _ in range(2):
            driver = self.make_driver(rate, seed=7)
            report = driver.run()
            runs.append(
                [(r.client_id, r.request_id, r.completed, r.status) for r in report.responses]
            )
        assert runs[0] == runs[1] and len(runs[0]) > 100


class TestPolicies:
    def test_policy_by_name(self):
        assert isinstance(policy_by_name("static"), StaticPolicy)
        assert isinstance(policy_by_name("reactive"), LoadAdaptivePolicy)
        assert isinstance(policy_by_name("forecast"), ForecastAwarePolicy)
        with pytest.raises(ValueError, match="unknown policy"):
            policy_by_name("oracle")

    def test_static_votes_the_current_fleet(self):
        p = StaticPolicy()
        assert p.desired_workers(signals(active=3, pending=1, arrival_rate=1e6)) == 4

    def test_reactive_sizes_from_rate_and_backlog(self):
        p = LoadAdaptivePolicy(target_utilisation=0.5, backlog_drain_s=2.0)
        # 100 req/s at 50 usable req/s/worker -> 2 workers.
        assert p.desired_workers(signals(arrival_rate=100.0)) == 2
        # A backlog of 100 demands 50 req/s more -> 3 workers.
        assert p.desired_workers(signals(arrival_rate=100.0, queue_depth=100)) == 3

    def test_reactive_validation(self):
        with pytest.raises(ValueError, match="target_utilisation"):
            LoadAdaptivePolicy(target_utilisation=0.0)
        with pytest.raises(ValueError):
            LoadAdaptivePolicy(backlog_drain_s=0.0)

    def test_forecast_floors_at_measured_rate(self):
        p = ForecastAwarePolicy(lead_time=2.0)
        assert p.planning_rate(signals(arrival_rate=80.0)) == 80.0  # no observations yet
        for i, r in enumerate([50.0, 50.0, 50.0]):
            p.observe(signals(t=float(i), arrival_rate=r))
        # Forecast near 50 cannot talk the policy below the measured 80.
        assert p.planning_rate(signals(t=3.0, arrival_rate=80.0)) == 80.0

    def test_forecast_leads_a_rising_trend(self):
        p = ForecastAwarePolicy(lead_time=5.0, headroom=0.0)
        for i in range(12):
            p.observe(signals(t=float(i), arrival_rate=100.0 + 10.0 * i))
        last = 100.0 + 10.0 * 11
        planned = p.planning_rate(signals(t=12.0, arrival_rate=last))
        assert planned > last  # projected ahead of the newest measurement
        prov = p.provenance()
        assert prov["policy"] == "forecast"
        assert prov["planned_rate"] == planned
        assert "forecast_mean" in prov

    def test_forecast_snapshot_carries_shard_feeds(self):
        p = ForecastAwarePolicy()
        p.observe(signals(t=1.0, arrival_rate=10.0, per_shard_rate={"s1": 7.0, "s2": 3.0}))
        snap = p.snapshot()
        assert set(snap["shards"]) == {"s1", "s2"}


class TestElasticConfig:
    def test_validation(self):
        policy = StaticPolicy()
        with pytest.raises(TypeError, match="PlacementPolicy"):
            ElasticConfig(policy="reactive")
        with pytest.raises(ValueError, match="min_workers"):
            ElasticConfig(policy=policy, min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ElasticConfig(policy=policy, min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            ElasticConfig(policy=policy, control_interval=0.0)


def elastic_cluster(policy="reactive", *, n_workers=2, faults=None, tracer=None,
                    seed=3, worker=FAST_WORKER, **elastic_kwargs):
    kwargs = dict(
        min_workers=1, max_workers=6, control_interval=1.0,
        provision_time=2.0, drain_grace=3.0, cooldown=5.0,
    )
    kwargs.update(elastic_kwargs)
    cluster, _, _ = demo_cluster(
        duration=600.0,
        sizes=(400, 600, 800, 1000, 1200, 1400),
        config=ClusterConfig(n_workers=n_workers, replication=2, worker=worker),
        faults=faults,
        rng=seed,
        tracer=tracer,
        elastic=ElasticConfig(policy=policy_by_name(policy), **kwargs),
    )
    return cluster


class TestAutoscaler:
    def test_control_times_are_interval_multiples(self):
        cluster = elastic_cluster(control_interval=0.5)
        assert cluster.autoscaler.control_times(60.0, 62.0) == [60.5, 61.0, 61.5, 62.0]
        assert cluster.autoscaler.control_times(60.0, 60.2) == []

    def test_scale_up_orders_and_commissions_workers(self):
        cluster = elastic_cluster()
        t = cluster.now
        cluster.order_worker(t)
        assert cluster.provisioning_count == 1
        assert "worker-2" not in cluster.workers
        cluster.step(t + 2.5)
        assert cluster.provisioning_count == 0
        assert "worker-2" in cluster.workers
        assert "worker-2" in cluster.router.workers
        snap = cluster.snapshot()
        assert snap["cluster"]["counters"]["scale_ups_total"] == 1

    def test_order_worker_requires_elastic(self):
        cluster, _, _ = demo_cluster(duration=120.0, sizes=(600,), rng=3)
        with pytest.raises(RuntimeError, match="ElasticConfig"):
            cluster.order_worker(cluster.now)
        assert cluster.snapshot()["elastic"] is None

    def test_never_drains_below_min_or_above_max(self):
        cluster = elastic_cluster("reactive", n_workers=2, min_workers=2, max_workers=3)
        # No traffic at all: the policy wants 1 worker, the floor says 2.
        cluster.step(cluster.now + 20.0)
        assert len(cluster.routable_workers) == 2
        timeline = cluster.autoscaler.timeline
        assert all(e["desired"] >= 2 for e in timeline)
        assert all(e["active"] + e["pending"] <= 3 for e in timeline)

    def test_scale_down_waits_for_cooldown(self):
        cluster = elastic_cluster("reactive", n_workers=4, min_workers=1, cooldown=10.0)
        cluster.step(cluster.now + 15.0)  # idle: policy wants 1 worker
        downs = [e["t"] for e in cluster.autoscaler.timeline if e["action"] == "scale_down"]
        assert len(downs) >= 2
        assert min(b - a for a, b in zip(downs, downs[1:])) >= 10.0

    def test_scale_down_never_fires_against_provisioning_capacity(self):
        # Regression: draining a live worker while replacements are
        # still provisioning collapses the ring exactly when the load
        # that prompted the order arrives.
        cluster = elastic_cluster("reactive", n_workers=2, min_workers=1, cooldown=0.0)
        t = cluster.now
        cluster.order_worker(t)  # a worker is pending for 2 s
        cluster.step(t + 1.0)  # idle control tick: desired=1 < current=3
        tick = cluster.autoscaler.timeline[-1]
        assert tick["pending"] == 1
        assert tick["action"] == "hold"
        cluster.step(t + 4.0)  # commissioned; pending==0 frees the drain
        assert any(e["action"] == "scale_down" for e in cluster.autoscaler.timeline)

    def test_static_policy_autoscaler_never_acts(self):
        cluster = elastic_cluster("static", n_workers=2, min_workers=1)
        driver = LoadDriver(
            cluster, cluster.models, OpenLoop(rate=200.0, clients=8), duration=8.0, rng=5
        )
        driver.run()
        assert all(e["action"] == "hold" for e in cluster.autoscaler.timeline)
        assert sorted(cluster.workers) == ["worker-0", "worker-1"]


class TestDrain:
    def test_drain_candidate_prefers_fewest_primaries_then_newest(self):
        cluster = elastic_cluster(n_workers=3)
        counts = cluster.router.primary_counts()
        victim = cluster.drain_candidate()
        low = min(counts.values())
        lightest = [n for n, c in counts.items() if c == low]
        assert victim == max(lightest, key=lambda n: int(n.rsplit("-", 1)[1]))

    def test_drain_candidate_never_empties_the_ring(self):
        cluster = elastic_cluster(n_workers=1)
        assert cluster.drain_candidate() is None

    def test_begin_drain_validation(self):
        cluster = elastic_cluster(n_workers=2)
        t = cluster.now
        with pytest.raises(ValueError, match="not a routable"):
            cluster.begin_drain("worker-9", t)
        cluster.begin_drain("worker-1", t)
        with pytest.raises(ValueError, match="not a routable"):
            cluster.begin_drain("worker-1", t)  # already off the ring

    def test_clean_drain_retires_without_migration(self):
        cluster = elastic_cluster(n_workers=2)
        t = cluster.now
        cluster.begin_drain("worker-1", t, grace=5.0)
        assert cluster.draining_workers == ["worker-1"]
        out = cluster.step(t + 1.0)  # empty queue: retires immediately
        assert out == []
        assert "worker-1" not in cluster.workers
        counters = cluster.snapshot()["cluster"]["counters"]
        assert counters["workers_retired_total"] == 1
        assert counters["requeued_total"] == 0


class DrainChaosHarness:
    """Fill one worker's queue, then drain (and maybe crash) it."""

    #: Slow enough that admitted work is still queued when chaos hits.
    SLOW = ServerConfig(service_time_base=0.5, service_time_per_request=0.1, batch_max=2)

    def build(self, faults=None):
        cluster, _, _ = demo_cluster(
            duration=600.0,
            sizes=(400, 600, 800, 1000, 1200, 1400),
            config=ClusterConfig(n_workers=3, replication=2, worker=self.SLOW),
            faults=faults,
            rng=3,
            elastic=ElasticConfig(
                policy=StaticPolicy(), min_workers=1, max_workers=6, drain_grace=3.0
            ),
        )
        return cluster

    def flood(self, cluster, victim: str, n: int = 24):
        """Submit ``n`` requests whose shard primaries are ``victim``."""
        from repro.serving.protocol import PredictRequest

        t = cluster.now
        owned = [m for m in cluster.models if cluster.owners(m)[0] == victim]
        assert owned, "victim owns no shards; pick a different seed"
        responses = []
        for i in range(n):
            r = cluster.submit(
                PredictRequest(
                    request_id=i, client_id="chaos", model=owned[i % len(owned)], submitted=t
                )
            )
            if r is not None:
                responses.append(r)
        return n, responses


class TestCrashDuringDrain(DrainChaosHarness):
    """Satellite regression: a worker that crashes *while draining* is
    migrated exactly once and never resurrected."""

    def test_exactly_once_and_no_resurrection(self):
        start = 60.0  # demo warmup
        faults = FaultPlan.crashes({"worker-0": [(start + 1.0, start + 5.0)]})
        cluster = self.build(faults=faults)
        submitted, responses = self.flood(cluster, "worker-0")
        cluster.begin_drain("worker-0", cluster.now, grace=10.0)

        # Crash hits at +1 s (inside the grace window), fault window
        # "ends" at +5 s — which must NOT restart the retired worker.
        responses += cluster.step(start + 30.0)

        assert "worker-0" not in cluster.workers  # retired, not restarted
        assert "worker-0" not in cluster.router.workers
        assert cluster.draining_workers == []

        # Zero lost, zero duplicated.
        assert len(responses) == submitted
        ids = [(r.client_id, r.request_id) for r in responses]
        assert len(set(ids)) == len(ids)
        assert all(r.status in ("ok", "overloaded") for r in responses)
        # Every migrated answer is tagged and degraded, never fresh.
        for r in responses:
            if r.status == "ok" and r.failover:
                assert r.quality != "fresh"

        counters = cluster.snapshot()["cluster"]["counters"]
        assert counters["worker_crashes_total"] == 1
        assert counters["worker_recoveries_total"] == 0  # no ghost revival
        assert counters["workers_retired_total"] == 1

    def test_forced_drain_migrates_remainder_exactly_once(self):
        cluster = self.build()
        submitted, responses = self.flood(cluster, "worker-0")
        cluster.begin_drain("worker-0", cluster.now, grace=0.5)
        responses += cluster.step(cluster.now + 30.0)
        assert len(responses) == submitted
        ids = [(r.client_id, r.request_id) for r in responses]
        assert len(set(ids)) == len(ids)
        counters = cluster.snapshot()["cluster"]["counters"]
        assert counters["workers_retired_total"] == 1
        assert counters["requeued_total"] > 0  # the deadline actually forced moves


class TestElasticTracing:
    """Satellite: seeded elastic runs export byte-identical traces whose
    decision spans carry forecast provenance."""

    def traced_run(self):
        tracer = Tracer()
        # Service-bound workers (~133 req/s each) so the 400 req/s peak
        # genuinely forces scale-ups.
        cluster = elastic_cluster(
            "forecast",
            n_workers=2,
            min_workers=1,
            tracer=tracer,
            cooldown=2.0,
            worker=ServerConfig(
                service_time_base=0.02, service_time_per_request=0.005, batch_max=8
            ),
        )
        LoadDriver(
            cluster,
            cluster.models,
            OpenLoop(
                FlashCrowdRate(base=20.0, peak=400.0, start=2.0, rise=2.0, hold=4.0, fall=2.0),
                clients=8,
            ),
            duration=12.0,
            deadline=5.0,
            rng=5,
        ).run()
        return tracer, cluster

    def test_exports_are_bit_identical_and_carry_provenance(self):
        tracer, cluster = self.traced_run()
        replay, _ = self.traced_run()
        assert json.dumps(trace_to_dict(tracer), sort_keys=True) == json.dumps(
            trace_to_dict(replay), sort_keys=True
        )

        spans = [s for s in trace_to_dict(tracer)["spans"] if s["stage"] == "elastic"]
        names = {s["name"] for s in spans}
        assert "elastic.decision" in names and "elastic.scale_up" in names
        assert "elastic.rebalance" in names and "elastic.retire" in names
        ups = [
            s for s in spans
            if s["name"] == "elastic.decision" and s["attrs"]["action"] == "scale_up"
        ]
        assert ups, "the flash crowd must force at least one scale-up decision"
        for span in ups:
            attrs = span["attrs"]
            assert attrs["policy"] == "forecast"
            assert "forecast_mean" in attrs and "planned_rate" in attrs
        # The fleet actually breathed under the surge.
        assert cluster.snapshot()["cluster"]["counters"]["scale_ups_total"] >= 1


class TestDisabledPathDeterminism:
    def test_elastic_none_is_seed_stable(self):
        runs = []
        for _ in range(2):
            cluster, _, _ = demo_cluster(
                duration=300.0,
                sizes=(600, 1000),
                config=ClusterConfig(n_workers=2, worker=FAST_WORKER),
                rng=3,
            )
            report = LoadDriver(
                cluster, cluster.models, OpenLoop(rate=80.0, clients=4),
                duration=10.0, rng=5,
            ).run()
            runs.append(
                [(r.client_id, r.request_id, r.completed, r.status, getattr(r, "value", None))
                 for r in report.responses]
            )
        assert runs[0] == runs[1]
