"""Tests for the NWS query-window calibration study."""

import pytest

from repro.experiments.calibration import run_calibration_study


class TestCalibrationStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_calibration_study(
            windows=(15.0, 90.0, 360.0), duration=14_400.0, rng=3
        )

    def test_full_grid(self, rows):
        regimes = {r.regime for r in rows}
        windows = {r.window_seconds for r in rows}
        assert regimes == {"single-mode", "bursty"}
        assert windows == {15.0, 90.0, 360.0}
        assert len(rows) == 6

    def test_bursty_coverage_grows_with_window(self, rows):
        bursty = {r.window_seconds: r.report for r in rows if r.regime == "bursty"}
        assert bursty[15.0].coverage < bursty[90.0].coverage < bursty[360.0].coverage

    def test_sharpness_price(self, rows):
        bursty = {r.window_seconds: r.report for r in rows if r.regime == "bursty"}
        assert bursty[360.0].sharpness > bursty[15.0].sharpness

    def test_single_mode_easier_than_bursty(self, rows):
        by = {(r.regime, r.window_seconds): r.report for r in rows}
        for w in (15.0, 90.0, 360.0):
            assert by[("single-mode", w)].mae < by[("bursty", w)].mae

    def test_deterministic_under_seed(self):
        a = run_calibration_study(windows=(45.0,), duration=7200.0, rng=9)
        b = run_calibration_study(windows=(45.0,), duration=7200.0, rng=9)
        assert a[0].report == b[0].report
