"""Tests for the latency-aware communication model (Section 2.3.1 form)."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.sor.decomposition import equal_strips
from repro.sor.distributed import simulate_sor
from repro.structural.comm_models import pt_to_pt
from repro.structural.parameters import Bindings, param_name
from repro.structural.sor_model import SORModel, bindings_for_platform


def make_cluster(latency=1e-3):
    machines = [Machine(f"m{i}", 1e5) for i in range(4)]
    network = Network(SharedEthernet(dedicated_bytes_per_sec=1.25e6, latency=latency))
    return machines, network


class TestPtToPtLatency:
    def bindings(self):
        b = Bindings()
        b.bind("size_elt", 8.0)
        b.bind("bw_avail", 1.0)
        b.bind(param_name("msg_elts", 0), 100.0)
        b.bind("dedbw[0,1]", 1000.0)
        b.bind("latency", 0.25)
        return b

    def test_latency_added(self):
        base = pt_to_pt(0, 1).evaluate(self.bindings())
        with_lat = pt_to_pt(0, 1, include_latency=True).evaluate(self.bindings())
        assert with_lat.mean == pytest.approx(base.mean + 0.25)

    def test_latency_param_listed(self):
        assert "latency" in pt_to_pt(0, 1, include_latency=True).params()
        assert "latency" not in pt_to_pt(0, 1).params()


class TestSORModelLatency:
    def test_bindings_carry_network_latency(self):
        machines, network = make_cluster(latency=0.01)
        b = bindings_for_platform(machines, network, equal_strips(402, 4))
        assert b.resolve("latency").mean == pytest.approx(0.01)

    def test_latency_model_tighter_against_simulator(self):
        machines, network = make_cluster()
        n, its = 1000, 20
        dec = equal_strips(n, 4)
        b = bindings_for_platform(machines, network, dec)
        actual = simulate_sor(machines, network, n, its, decomposition=dec).elapsed
        err_plain = abs(SORModel(4, its).predict(b).mean - actual) / actual
        err_lat = abs(
            SORModel(4, its, include_latency=True).predict(b).mean - actual
        ) / actual
        assert err_lat < err_plain
        assert err_lat < 0.005

    def test_zero_latency_models_agree(self):
        machines, network = make_cluster(latency=0.0)
        dec = equal_strips(402, 4)
        b = bindings_for_platform(machines, network, dec)
        plain = SORModel(4, 10).predict(b).mean
        lat = SORModel(4, 10, include_latency=True).predict(b).mean
        assert lat == pytest.approx(plain)

    def test_single_processor_latency_zero_bound(self):
        machines = [Machine("solo", 1e5)]
        b = bindings_for_platform(machines, Network(), equal_strips(100, 1))
        assert b.resolve("latency").mean == 0.0
