"""Tests for per-request precision targets in the serving stack."""

import numpy as np
import pytest

from repro.serving import (
    DEFAULT_PRECISION_LADDER,
    AdmissionController,
    AdmissionPolicy,
    ClosedLoop,
    ClusterConfig,
    LoadDriver,
    PrecisionInfo,
    ServerConfig,
    demo_cluster,
    demo_server,
)
from repro.serving.protocol import DEGRADED_QUEUE_PRESSURE, PredictRequest
from repro.structural.repeaters import PrecisionTarget

TARGET = PrecisionTarget.parse("p95:2%", min_samples=64)


def _submit(server, n, *, precision=None, model="sor-1000", t=60.0, client="c"):
    for i in range(n):
        resp = server.submit(
            PredictRequest(
                request_id=i,
                client_id=client if isinstance(client, str) else client(i),
                model=model,
                submitted=t,
                precision=precision,
            )
        )
        assert resp is None, resp


class TestPrecisionProtocol:
    def test_request_rejects_non_target_precision(self):
        with pytest.raises(TypeError):
            PredictRequest(
                request_id=0, client_id="c", model="m", submitted=0.0, precision="p95:2%"
            )

    def test_degraded_info_requires_factor_and_reason(self):
        with pytest.raises(ValueError):
            PrecisionInfo(degraded=True, shed_factor=1.0, reason="x")
        with pytest.raises(ValueError):
            PrecisionInfo(degraded=True, shed_factor=2.0, reason="")
        info = PrecisionInfo(
            draws=100, budget=400, degraded=True, shed_factor=2.0, reason="queue_pressure"
        )
        assert info.saved_fraction == pytest.approx(0.75)
        assert info.to_dict()["reason"] == "queue_pressure"


class TestPrecisionLadder:
    def test_policy_validates_ladder(self):
        AdmissionPolicy(precision_ladder=DEFAULT_PRECISION_LADDER)  # ok
        with pytest.raises(ValueError):
            AdmissionPolicy(precision_ladder=((0.5, 2.0), (0.4, 4.0)))
        with pytest.raises(ValueError):
            AdmissionPolicy(precision_ladder=((0.5, 2.0), (0.75, 2.0)))
        with pytest.raises(ValueError):
            AdmissionPolicy(precision_ladder=((1.5, 2.0),))

    def test_factor_steps_with_queue_depth(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_queue=100, precision_ladder=DEFAULT_PRECISION_LADDER)
        )
        assert ctl.precision_factor(0) == 1.0
        assert ctl.precision_factor(49) == 1.0
        assert ctl.precision_factor(50) == 2.0
        assert ctl.precision_factor(75) == 4.0
        assert ctl.precision_factor(95) == 8.0

    def test_no_ladder_means_no_degradation(self):
        ctl = AdmissionController(AdmissionPolicy(max_queue=10))
        assert ctl.precision_factor(10) == 1.0


class TestAdaptiveServer:
    def test_adaptive_response_carries_precision_info(self):
        server, _, _ = demo_server(duration=300.0)
        _submit(server, 4, precision=TARGET)
        out = server.step(70.0)
        assert len(out) == 4
        for resp in out:
            info = resp.precision
            assert info is not None
            assert 0 < info.draws <= info.budget == server.config.n_samples
            assert info.requested == info.effective == TARGET.describe()
            assert not info.degraded and info.reason == ""

    def test_fixed_requests_have_no_precision_block(self):
        server, _, _ = demo_server(duration=300.0)
        _submit(server, 4)
        assert all(r.precision is None for r in server.step(70.0))

    def test_mixed_batch_serves_both_kinds(self):
        server, _, _ = demo_server(duration=300.0)
        for i in range(4):
            server.submit(
                PredictRequest(
                    request_id=i,
                    client_id="c",
                    model="sor-1000",
                    submitted=60.0,
                    precision=TARGET if i % 2 == 0 else None,
                )
            )
        out = sorted(server.step(70.0), key=lambda r: r.request_id)
        assert [r.precision is not None for r in out] == [True, False, True, False]
        # Fixed riders in an adaptive batch still get full-budget clouds.
        assert all(r.ok for r in out)

    def test_server_default_target_applies_to_bare_requests(self):
        server, _, _ = demo_server(
            duration=300.0, config=ServerConfig(precision=TARGET)
        )
        _submit(server, 2)
        out = server.step(70.0)
        assert all(r.precision is not None and r.precision.draws > 0 for r in out)

    def test_reference_mode_ignores_targets(self):
        server, _, _ = demo_server(
            duration=300.0, config=ServerConfig(mode="reference")
        )
        _submit(server, 2, precision=TARGET)
        out = server.step(70.0)
        assert all(r.ok and r.precision is None for r in out)

    def test_clamps_cap_and_tolerance_to_server_limits(self):
        server, _, _ = demo_server(
            duration=300.0, config=ServerConfig(n_samples=200, min_rel_tol=0.01)
        )
        greedy = PrecisionTarget.parse(
            "p95:0.001%", min_samples=64, max_samples=1_000_000
        )
        _submit(server, 1, precision=greedy)
        (resp,) = server.step(70.0)
        info = resp.precision
        assert info.budget == 200 and info.draws <= 200
        # The clamped contract is reported back, never silently applied.
        assert "1%" in info.requested

    def test_adaptive_run_is_deterministic(self):
        def run():
            server, _, _ = demo_server(duration=300.0)
            _submit(server, 4, precision=TARGET)
            return [
                (r.p95, r.precision.draws, r.precision.half_width)
                for r in sorted(server.step(70.0), key=lambda r: r.request_id)
            ]

        assert run() == run()

    def test_adaptive_batch_finishes_faster_than_fixed(self):
        cfg = ServerConfig()
        server, _, _ = demo_server(duration=300.0, config=cfg)
        _submit(server, 4, precision=TARGET)
        (adaptive,) = {r.completed for r in server.step(70.0)}

        server2, _, _ = demo_server(duration=300.0, config=cfg)
        _submit(server2, 4)
        (fixed,) = {r.completed for r in server2.step(70.0)}
        assert adaptive < fixed

    def test_draws_metrics_created_lazily(self):
        server, _, _ = demo_server(duration=300.0)
        _submit(server, 2)
        server.step(70.0)
        counters = server.metrics.snapshot()["counters"]
        assert "draws_used_total" not in counters
        _submit(server, 2, precision=TARGET)
        server.step(80.0)
        counters = server.metrics.snapshot()["counters"]
        assert counters["draws_used_total"] > 0
        assert counters["draws_budget_total"] == 2 * server.config.n_samples


class TestPrecisionShedding:
    def _flooded_server(self):
        cfg = ServerConfig(
            batch_max=4,
            admission=AdmissionPolicy(
                max_queue=16, precision_ladder=DEFAULT_PRECISION_LADDER
            ),
        )
        server, _, _ = demo_server(duration=600.0, config=cfg)
        _submit(server, 16, precision=TARGET, client=lambda i: f"c{i}")
        return server

    def test_degradation_under_pressure_is_tagged_and_recovers(self):
        server = self._flooded_server()
        out = sorted(server.step(200.0), key=lambda r: r.request_id)
        assert len(out) == 16
        degraded = [r for r in out if r.precision.degraded]
        assert degraded, "expected precision shedding under a flooded queue"
        for resp in degraded:
            assert resp.precision.shed_factor > 1.0
            assert resp.precision.reason == DEGRADED_QUEUE_PRESSURE
            assert resp.precision.effective != resp.precision.requested
        # Once the queue drains the tail of the run is served at full
        # contract again.
        assert not out[-1].precision.degraded

    def test_degraded_count_lands_in_metrics(self):
        server = self._flooded_server()
        out = server.step(200.0)
        counters = server.metrics.snapshot()["counters"]
        assert counters["precision_degraded_total"] == sum(
            1 for r in out if r.precision.degraded
        )


class TestDriverPrecision:
    def test_driver_stamps_targets_on_every_request(self):
        server, _, _ = demo_server(duration=600.0)
        driver = LoadDriver(
            server,
            server.models,
            ClosedLoop(clients=4),
            max_requests=20,
            rng=11,
            precision=TARGET,
        )
        report = driver.run()
        assert report.ok == 20
        assert all(r.precision is not None for r in report.responses if r.ok)

    def test_driver_without_precision_is_unchanged(self):
        def drive(precision):
            server, _, _ = demo_server(duration=600.0)
            driver = LoadDriver(
                server,
                server.models,
                ClosedLoop(clients=4),
                max_requests=20,
                rng=11,
                precision=precision,
            )
            return [
                (r.request_id, r.p95) for r in driver.run().responses if r.ok
            ]

        assert drive(None) == drive(None)


class TestClusterAdaptive:
    def test_cluster_preserves_precision_block_and_merges_draws(self):
        config = ClusterConfig(n_workers=2, replication=2)
        cluster, _, _ = demo_cluster(duration=600.0, config=config)
        driver = LoadDriver(
            cluster,
            cluster.models,
            ClosedLoop(clients=4),
            max_requests=16,
            rng=11,
            precision=TARGET,
        )
        report = driver.run()
        assert report.ok == 16
        oks = [r for r in report.responses if r.ok]
        assert all(r.precision is not None and r.worker for r in oks)
        snap = cluster.snapshot()
        assert snap["aggregated"]["draws_used"]["count"] == 16

    def test_fixed_cluster_snapshot_has_no_draws_key(self):
        config = ClusterConfig(n_workers=2, replication=2)
        cluster, _, _ = demo_cluster(duration=600.0, config=config)
        driver = LoadDriver(
            cluster, cluster.models, ClosedLoop(clients=4), max_requests=8, rng=11
        )
        driver.run()
        snap = cluster.snapshot()
        assert "draws_used" not in snap["aggregated"]
        assert set(snap["aggregated"]) == {"latency_s", "batch_size"}
