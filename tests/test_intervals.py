"""Tests for repro.core.intervals — the paper's prediction-quality metrics."""

import pytest

from repro.core.intervals import (
    assess_predictions,
    capture_fraction,
    mean_point_error,
    out_of_range_error,
    relative_out_of_range_error,
)
from repro.core.stochastic import StochasticValue as SV


class TestOutOfRangeError:
    def test_inside_is_zero(self):
        # Footnote 6: error is zero for values inside (X - a, X + a).
        assert out_of_range_error(SV(10.0, 2.0), 9.0) == 0.0
        assert out_of_range_error(SV(10.0, 2.0), 12.0) == 0.0

    def test_above_distance_to_upper(self):
        assert out_of_range_error(SV(10.0, 2.0), 13.0) == pytest.approx(1.0)

    def test_below_distance_to_lower(self):
        assert out_of_range_error(SV(10.0, 2.0), 6.5) == pytest.approx(1.5)

    def test_point_prediction(self):
        assert out_of_range_error(SV.point(10.0), 12.0) == pytest.approx(2.0)

    def test_relative_error(self):
        assert relative_out_of_range_error(SV(10.0, 2.0), 16.0) == pytest.approx(4.0 / 16.0)

    def test_relative_zero_actual_rejected(self):
        with pytest.raises(ZeroDivisionError):
            relative_out_of_range_error(SV(1.0, 0.1), 0.0)


class TestMeanPointError:
    def test_value(self):
        assert mean_point_error(SV(12.0, 3.0), 10.0) == pytest.approx(0.2)

    def test_exact_is_zero(self):
        assert mean_point_error(SV(10.0, 5.0), 10.0) == 0.0

    def test_zero_actual_rejected(self):
        with pytest.raises(ZeroDivisionError):
            mean_point_error(SV(1.0, 0.0), 0.0)


class TestCapture:
    def test_all_captured(self):
        preds = [SV(10.0, 2.0)] * 3
        assert capture_fraction(preds, [9.0, 10.0, 11.9]) == 1.0

    def test_partial(self):
        preds = [SV(10.0, 1.0)] * 4
        assert capture_fraction(preds, [9.5, 10.5, 20.0, 5.0]) == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            capture_fraction([SV(1.0, 0.1)], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            capture_fraction([], [])


class TestAssess:
    def test_platform1_style_all_inside(self):
        # All actuals inside the range: 0% interval discrepancy, like
        # Section 3.1's representative experiment.
        preds = [SV(100.0, 10.0), SV(150.0, 12.0)]
        q = assess_predictions(preds, [95.0, 155.0])
        assert q.capture == 1.0
        assert q.max_range_error == 0.0
        assert q.max_mean_error == pytest.approx(5.0 / 95.0)
        assert q.n == 2

    def test_platform2_style_mixed(self):
        preds = [SV(50.0, 5.0)] * 5
        actuals = [50.0, 52.0, 48.0, 60.0, 40.0]
        q = assess_predictions(preds, actuals)
        assert q.capture == pytest.approx(0.6)
        # actual=40 misses the range [45, 55] by 5 -> 5/40; actual=60 by 5 -> 5/60.
        assert q.max_range_error == pytest.approx(5.0 / 40.0)
        assert q.mean_range_error > 0.0

    def test_summary_string(self):
        q = assess_predictions([SV(10.0, 1.0)], [10.5])
        s = q.summary()
        assert "capture=100.0%" in s and "n=1" in s

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            assess_predictions([SV(1.0, 0.1)], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assess_predictions([], [])
