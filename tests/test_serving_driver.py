"""Tests for the seeded load driver (open/closed loop) and its report."""

import math

import pytest

from repro.serving import (
    AdmissionPolicy,
    ClosedLoop,
    LoadDriver,
    OpenLoop,
    ServerConfig,
    demo_server,
)


def make_server(**kw):
    server, _, _ = demo_server(rng=11, **kw)
    return server


class TestWorkloadConfigs:
    def test_open_loop_validation(self):
        with pytest.raises(ValueError):
            OpenLoop(rate=0.0)
        with pytest.raises(ValueError):
            OpenLoop(rate=10.0, clients=0)

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError):
            ClosedLoop(clients=0)
        with pytest.raises(ValueError):
            ClosedLoop(clients=1, think_time=-1.0)

    def test_driver_needs_a_bound(self):
        server = make_server()
        with pytest.raises(ValueError, match="bound the drive"):
            LoadDriver(server, server.models, ClosedLoop(clients=2))

    def test_driver_rejects_unknown_workload(self):
        server = make_server()
        with pytest.raises(TypeError):
            LoadDriver(server, server.models, "poisson", max_requests=5)


class TestClosedLoop:
    def test_every_request_answered(self):
        server = make_server()
        drv = LoadDriver(server, server.models, ClosedLoop(clients=4), max_requests=40, rng=2)
        rep = drv.run()
        assert rep.submitted == 40
        assert rep.ok + rep.shed + rep.errors == 40
        assert rep.errors == 0
        assert rep.ok > 0

    def test_one_in_flight_per_client(self):
        server = make_server()
        drv = LoadDriver(server, server.models, ClosedLoop(clients=3), max_requests=30, rng=2)
        rep = drv.run()
        # A client never has two outstanding requests: its responses'
        # completion times are non-decreasing and spaced by >= one
        # service interval.
        by_client = {}
        for r in rep.responses:
            by_client.setdefault(r.client_id, []).append(r.completed)
        assert set(by_client) == {"client-0", "client-1", "client-2"}
        for times in by_client.values():
            assert times == sorted(times)

    def test_latency_stats_populated(self):
        server = make_server()
        rep = LoadDriver(
            server, server.models, ClosedLoop(clients=4), max_requests=20, rng=2
        ).run()
        assert rep.latency_p50 > 0.0
        assert rep.latency_p99 >= rep.latency_p50
        assert rep.latency_max >= rep.latency_p99
        assert rep.qps_sim > 0.0 and rep.qps_wall > 0.0
        assert "throughput" in rep.summary()


class TestOpenLoop:
    def test_bounded_by_duration(self):
        server = make_server()
        drv = LoadDriver(
            server, server.models, OpenLoop(rate=20.0), duration=10.0, rng=4
        )
        rep = drv.run()
        # Poisson with rate 20 over 10 s: ~200 arrivals, all answered.
        assert 140 < rep.submitted < 280
        assert rep.ok + rep.shed + rep.errors == rep.submitted

    def test_overload_sheds_not_raises(self):
        cfg = ServerConfig(admission=AdmissionPolicy(max_queue=32))
        server = make_server(config=cfg)
        drv = LoadDriver(
            server,
            server.models,
            OpenLoop(rate=5000.0, clients=8),
            max_requests=500,
            duration=5.0,
            rng=4,
        )
        rep = drv.run()
        assert rep.shed > 0
        assert rep.shed_reasons.get("queue_full", 0) > 0
        assert rep.errors == 0
        assert rep.ok + rep.shed == rep.submitted

    def test_deterministic_given_seed(self):
        def drive():
            server = make_server()
            rep = LoadDriver(
                server, server.models, OpenLoop(rate=50.0), duration=4.0, rng=13
            ).run()
            return [(r.request_id, r.status, r.completed) for r in rep.responses]

        assert drive() == drive()

    def test_different_seeds_differ(self):
        def drive(seed):
            server = make_server()
            rep = LoadDriver(
                server, server.models, OpenLoop(rate=50.0), duration=4.0, rng=seed
            ).run()
            return [(r.request_id, r.status, r.completed) for r in rep.responses]

        assert drive(1) != drive(2)


class TestThrottling:
    def test_token_bucket_limits_one_client(self):
        cfg = ServerConfig(
            admission=AdmissionPolicy(max_queue=1000, client_rate=2.0, client_burst=4.0)
        )
        server = make_server(config=cfg)
        drv = LoadDriver(
            server,
            server.models,
            OpenLoop(rate=200.0, clients=1),  # one chatty client
            duration=5.0,
            rng=4,
        )
        rep = drv.run()
        assert rep.shed_reasons.get("throttled", 0) > 0
        # The bucket admits roughly burst + rate * duration requests.
        assert rep.ok <= 4 + 2.0 * (rep.sim_duration + 1.0)
        assert all(math.isfinite(r.completed) for r in rep.responses)


class TestColumnarDriver:
    def test_every_request_answered_losslessly(self):
        from repro.serving import ColumnarLoadDriver

        server = make_server()
        rep = ColumnarLoadDriver(
            server, server.models, rate=200.0, max_requests=2000, rng=3
        ).run()
        assert rep.submitted == 2000
        assert rep.ok + rep.shed + rep.errors == 2000
        assert rep.lost == 0 and rep.duplicates == 0
        assert rep.responses == []  # columnar accounting never materialises

    def test_deadlines_and_queue_bounds_shed(self):
        from repro.serving import ColumnarLoadDriver

        cfg = ServerConfig(admission=AdmissionPolicy(max_queue=32))
        server = make_server(config=cfg)
        rep = ColumnarLoadDriver(
            server,
            server.models,
            rate=2000.0,  # far over capacity
            max_requests=3000,
            deadline=1.0,
            rng=3,
        ).run()
        assert rep.shed > 0
        assert set(rep.shed_reasons) <= {"queue_full", "deadline", "throttled"}
        assert rep.lost == 0 and rep.duplicates == 0
        assert rep.ok + rep.shed == 3000

    def test_seeded_runs_reproduce_and_seeds_differ(self):
        from repro.serving import ColumnarLoadDriver

        def drive(seed):
            server = make_server()
            rep = ColumnarLoadDriver(
                server, server.models, rate=100.0, duration=5.0, rng=seed
            ).run()
            return (rep.submitted, rep.ok, rep.shed, rep.latency_p50, rep.latency_p99)

        assert drive(1) == drive(1)
        assert drive(1) != drive(2)

    def test_progress_marks_fire(self):
        from repro.serving import ColumnarLoadDriver

        server = make_server()
        marks = []
        ColumnarLoadDriver(
            server,
            server.models,
            rate=200.0,
            max_requests=1000,
            rng=3,
            progress=lambda answered, wall: marks.append(answered),
            progress_every=250,
        ).run()
        assert marks[-1] == 1000
        assert all(b >= a for a, b in zip(marks, marks[1:]))
        assert marks[0] >= 250

    def test_model_weights_skew_traffic(self):
        from repro.serving import ColumnarLoadDriver

        server = make_server()
        hot = server.models[0]
        drv = ColumnarLoadDriver(
            server,
            server.models,
            rate=100.0,
            max_requests=400,
            rng=3,
            model_weights={hot: 1.0},
        )
        rep = drv.run()
        assert rep.ok == 400  # all answered, all on the hot model
        counters = server.metrics.snapshot()["counters"]
        assert counters["responses_ok"] == 400

    def test_validation(self):
        from repro.serving import ColumnarLoadDriver

        server = make_server()
        with pytest.raises(ValueError, match="bound the drive"):
            ColumnarLoadDriver(server, server.models, rate=10.0)
        with pytest.raises(ValueError):
            ColumnarLoadDriver(server, server.models, rate=0.0, max_requests=5)
        with pytest.raises(ValueError, match="model_weights"):
            ColumnarLoadDriver(
                server, server.models, rate=10.0, max_requests=5,
                model_weights={"nope": 1.0},
            )
