"""Tests for heterogeneous links: the switched platform and per-pair DedBW."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.sor.decomposition import equal_strips
from repro.sor.distributed import simulate_sor
from repro.structural.comm_models import dedbw_name
from repro.structural.sor_model import SORModel, bindings_for_platform
from repro.workload.platforms import switched_platform


class TestSwitchedPlatform:
    def test_fast_pair_installed(self):
        plat = switched_platform(rng=0)
        fast = plat.network.link("ultra-1", "ultra-2")
        slow = plat.network.link("sparc5", "sparc10")
        assert fast.dedicated_bytes_per_sec == pytest.approx(1.25e7)
        assert slow.dedicated_bytes_per_sec == pytest.approx(1.25e6)

    def test_symmetric_lookup(self):
        plat = switched_platform(rng=1)
        assert (
            plat.network.link("ultra-2", "ultra-1")
            is plat.network.link("ultra-1", "ultra-2")
        )

    def test_same_machines_as_platform2(self):
        plat = switched_platform(rng=2)
        assert plat.names == ("sparc5", "sparc10", "ultra-1", "ultra-2")


class TestPerPairModelParameters:
    def make(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(3)]
        network = Network(SharedEthernet(dedicated_bytes_per_sec=1e6, latency=0.0))
        network.set_link("m1", "m2", SharedEthernet(dedicated_bytes_per_sec=1e8, latency=0.0))
        return machines, network

    def test_bindings_reflect_overrides(self):
        machines, network = self.make()
        dec = equal_strips(302, 3)
        b = bindings_for_platform(machines, network, dec)
        assert b.resolve(dedbw_name(0, 1)).mean == pytest.approx(1e6)
        assert b.resolve(dedbw_name(1, 2)).mean == pytest.approx(1e8)

    def test_model_tracks_simulator_with_heterogeneous_links(self):
        machines, network = self.make()
        n, its = 302, 10
        dec = equal_strips(n, 3)
        model = SORModel(n_procs=3, iterations=its, include_latency=True)
        pred = model.predict(bindings_for_platform(machines, network, dec))
        actual = simulate_sor(machines, network, n, its, decomposition=dec)
        assert pred.mean == pytest.approx(actual.elapsed, rel=0.02)

    def test_fast_pair_speeds_up_its_exchanges(self):
        # With a very slow default segment, upgrading one link must
        # shorten the run.
        machines = [Machine(f"m{i}", 1e6) for i in range(3)]
        slow_net = Network(SharedEthernet(dedicated_bytes_per_sec=1e4, latency=0.0))
        base = simulate_sor(machines, slow_net, 302, 5).elapsed
        upgraded = Network(SharedEthernet(dedicated_bytes_per_sec=1e4, latency=0.0))
        upgraded.set_link("m1", "m2", SharedEthernet(dedicated_bytes_per_sec=1e8, latency=0.0))
        faster = simulate_sor(machines, upgraded, 302, 5).elapsed
        assert faster < base
