"""Shared test fixtures: the golden-trace comparison harness.

Golden traces are seeded end-to-end runs frozen as JSON under
``tests/goldens/``.  A golden test builds the run's payload and hands it
to the ``golden`` fixture, which either compares it against the stored
file (float leaves within tolerance, everything else exact) or — when
pytest runs with ``--update-goldens`` — rewrites the file and skips.

Workflow after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/ --update-goldens
    git diff tests/goldens/   # review what actually changed
"""

import json
import math
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Relative/absolute tolerance for float leaves.  Goldens are produced
#: by seeded simulated-time runs, so differences beyond arithmetic noise
#: mean the pipeline's behaviour actually changed.
FLOAT_TOL = 1e-9


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current run instead of comparing",
    )


def _diff(expected, actual, path: str, errors: list) -> None:
    """Collect human-readable mismatches between two JSON-ish trees."""
    if len(errors) >= 10:  # enough to diagnose; keep the report readable
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                errors.append(f"{path}.{key}: unexpected new key")
            elif key not in actual:
                errors.append(f"{path}.{key}: missing key")
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", errors)
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            errors.append(f"{path}: length {len(actual)} != golden {len(expected)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{i}]", errors)
        return
    if isinstance(expected, float) or isinstance(actual, float):
        same = (
            isinstance(expected, (int, float))
            and isinstance(actual, (int, float))
            and not isinstance(expected, bool)
            and not isinstance(actual, bool)
            and math.isclose(float(expected), float(actual), rel_tol=FLOAT_TOL, abs_tol=FLOAT_TOL)
        )
        if not same:
            errors.append(f"{path}: {actual!r} != golden {expected!r}")
        return
    if expected != actual:
        errors.append(f"{path}: {actual!r} != golden {expected!r}")


@pytest.fixture
def golden(request):
    """Compare a payload against ``tests/goldens/<name>.json``.

    With ``--update-goldens`` the file is (re)written from the payload
    and the test is skipped, so an update run cannot silently pass.
    """

    def check(name: str, payload: dict) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        # Round-trip through JSON so the comparison sees exactly what
        # the file format can represent (tuples become lists, etc.).
        payload = json.loads(json.dumps(payload))
        if request.config.getoption("--update-goldens"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"golden {name} updated")
        if not path.exists():
            pytest.fail(
                f"golden {path.name} missing - run pytest with --update-goldens to create it"
            )
        expected = json.loads(path.read_text())
        errors: list = []
        _diff(expected, payload, name, errors)
        if errors:
            listing = "\n  ".join(errors)
            pytest.fail(f"golden {path.name} mismatch:\n  {listing}")

    return check
