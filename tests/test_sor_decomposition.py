"""Tests for repro.sor.decomposition — strip partitioning."""

import numpy as np
import pytest

from repro.sor.decomposition import (
    ELEMENT_BYTES,
    Strip,
    StripDecomposition,
    equal_strips,
    weighted_strips,
)


class TestEqualStrips:
    def test_covers_all_rows(self):
        dec = equal_strips(102, 4)
        assert dec.strips[0].row_start == 0
        assert dec.strips[-1].row_end == 100
        assert sum(s.rows for s in dec.strips) == 100

    def test_even_split(self):
        dec = equal_strips(102, 4)
        assert [s.rows for s in dec.strips] == [25, 25, 25, 25]

    def test_remainder_to_leading_strips(self):
        dec = equal_strips(101, 4)  # 99 interior rows
        assert [s.rows for s in dec.strips] == [25, 25, 25, 24]

    def test_single_processor(self):
        dec = equal_strips(10, 1)
        assert dec.strips[0].rows == 8

    def test_elements(self):
        dec = equal_strips(102, 4)
        assert dec.elements(0) == 25 * 100
        assert dec.elements_per_color(0) == 12.5 * 100

    def test_ghost_row_bytes(self):
        dec = equal_strips(1602, 4)
        assert dec.ghost_row_bytes() == 1600 * ELEMENT_BYTES

    def test_neighbors(self):
        dec = equal_strips(102, 4)
        assert dec.neighbors(0) == [1]
        assert dec.neighbors(1) == [0, 2]
        assert dec.neighbors(3) == [2]

    def test_too_many_procs_rejected(self):
        with pytest.raises(ValueError):
            equal_strips(5, 4)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            equal_strips(10, 0)


class TestWeightedStrips:
    def test_proportional_split(self):
        dec = weighted_strips(102, [1.0, 3.0])
        assert [s.rows for s in dec.strips] == [25, 75]

    def test_total_preserved(self):
        dec = weighted_strips(100, [1.0, 2.0, 3.0, 4.0])
        assert sum(s.rows for s in dec.strips) == 98

    def test_every_proc_gets_a_row(self):
        dec = weighted_strips(102, [1000.0, 1.0])
        assert all(s.rows >= 1 for s in dec.strips)

    def test_capacity_balancing_effect(self):
        # Footnote 2: a machine with twice the capacity should finish its
        # (twice larger) strip in the same time.
        dec = weighted_strips(202, [1.0, 2.0])
        t0 = dec.elements(0) / 1.0
        t1 = dec.elements(1) / 2.0
        assert abs(t0 - t1) / t0 < 0.05

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_strips(10, [1.0, 0.0])

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_strips(10, [])


class TestValidation:
    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(
                n=10, strips=(Strip(0, 0, 3), Strip(1, 4, 8))
            )

    def test_wrong_total_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(n=10, strips=(Strip(0, 0, 4),))

    def test_bad_proc_order_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(n=10, strips=(Strip(1, 0, 8),))

    def test_empty_strip_rejected(self):
        with pytest.raises(ValueError):
            StripDecomposition(n=10, strips=(Strip(0, 0, 0), Strip(1, 0, 8)))
