"""Integration tests: tracing threaded through the serving pipeline.

Three properties the ISSUE demands of the tracing layer:

* **Determinism** — the same seeded workload against a fresh tracer
  exports a byte-identical trace (both formats).
* **No-op equivalence** — tracing observes, never perturbs: a traced
  run answers every request with exactly the values of an untraced run
  (the goldens in ``tests/goldens/`` separately pin the untraced path).
* **Provenance** — a cluster trace contains all four pipeline stages,
  and a replica's answer after a worker crash carries the failover hop.
"""

import json

import pytest

from repro.obs import (
    STAGE_CLUSTER,
    STAGE_NWS,
    STAGE_SERVING,
    STAGE_STRUCTURAL,
    Tracer,
    trace_to_chrome,
    trace_to_dict,
    traced_cluster_run,
    traced_server_run,
)
from repro.serving import ClosedLoop, LoadDriver, demo_server
from repro.structural.engine import clear_plan_cache

SEED = 7


@pytest.fixture(scope="module")
def server_run():
    return traced_server_run(rng=SEED)


@pytest.fixture(scope="module")
def cluster_run():
    return traced_cluster_run(rng=SEED)


class TestSeededDeterminism:
    def test_server_trace_exports_are_bit_identical(self, server_run):
        tracer, _, _ = server_run
        replay, _, _ = traced_server_run(rng=SEED)
        assert json.dumps(trace_to_dict(tracer), sort_keys=True) == json.dumps(
            trace_to_dict(replay), sort_keys=True
        )
        assert json.dumps(trace_to_chrome(tracer), sort_keys=True) == json.dumps(
            trace_to_chrome(replay), sort_keys=True
        )

    def test_different_seed_different_trace(self, server_run):
        tracer, _, _ = server_run
        other, _, _ = traced_server_run(rng=SEED + 1)
        assert json.dumps(trace_to_dict(tracer), sort_keys=True) != json.dumps(
            trace_to_dict(other), sort_keys=True
        )


class TestNoOpEquivalence:
    def test_traced_run_answers_exactly_like_an_untraced_run(self, server_run):
        _, traced_report, _ = server_run
        clear_plan_cache()
        server, _, _ = demo_server(duration=600.0, rng=SEED)  # null tracer
        untraced = LoadDriver(
            server,
            server.models,
            ClosedLoop(clients=4, think_time=0.5),
            max_requests=120,
            rng=SEED,
        ).run()
        assert [
            (r.request_id, r.client_id, r.completed, r.value, r.quality)
            for r in traced_report.responses
        ] == [
            (r.request_id, r.client_id, r.completed, r.value, r.quality)
            for r in untraced.responses
        ]

    def test_untraced_server_allocates_no_spans(self):
        server, _, _ = demo_server(duration=300.0, rng=SEED)
        assert not server.tracer.enabled
        assert len(server.tracer) == 0


class TestStageCoverage:
    def test_server_trace_covers_nws_structural_and_serving(self, server_run):
        tracer, report, _ = server_run
        counts = tracer.stage_counts()
        for stage in (STAGE_NWS, STAGE_STRUCTURAL, STAGE_SERVING):
            assert counts.get(stage, 0) > 0, f"no spans from stage {stage}"
        # One request span per answered request, each resolved.
        requests = tracer.find(name="request", stage=STAGE_SERVING)
        assert len(requests) == report.ok
        assert all(sp.attrs.get("outcome") == "ok" for sp in requests)
        assert all(sp.end is not None for sp in requests)

    def test_cluster_trace_covers_all_four_stages(self, cluster_run):
        tracer, _, _ = cluster_run
        counts = tracer.stage_counts()
        for stage in (STAGE_NWS, STAGE_STRUCTURAL, STAGE_SERVING, STAGE_CLUSTER):
            assert counts.get(stage, 0) > 0, f"no spans from stage {stage}"

    def test_forecast_lookups_record_their_outcome(self, server_run):
        tracer, _, _ = server_run
        lookups = tracer.find(name="forecast.lookup", stage=STAGE_NWS)
        assert lookups
        outcomes = {sp.attrs["outcome"] for sp in lookups}
        assert outcomes <= {"hit", "adopt", "refresh"}
        assert "refresh" in outcomes and "hit" in outcomes
        # A refresh runs the qualified query, nested under the lookup.
        refresh = next(sp for sp in lookups if sp.attrs["outcome"] == "refresh")
        children = [s for s in tracer.spans if s.parent_id == refresh.span_id]
        assert any(s.name == "nws.query_qualified" for s in children)

    def test_plan_compilation_traces_cache_hits_and_misses(self, server_run):
        tracer, _, _ = server_run
        compiles = tracer.find(name="plan.compile", stage=STAGE_STRUCTURAL)
        assert compiles
        # Demo models share one expression: exactly one miss, rest hits.
        misses = [sp for sp in compiles if not sp.attrs["cache_hit"]]
        assert len(misses) == 1
        assert len(compiles) > 1
        assert all(sp.attrs["cache_hit"] for sp in compiles if sp is not misses[0])

    def test_batch_spans_link_their_requests(self, server_run):
        tracer, _, _ = server_run
        batches = tracer.find(name="serving.batch", stage=STAGE_SERVING)
        assert batches
        assert all(sp.attrs["engine"] == "vectorised" for sp in batches)
        by_id = {sp.span_id: sp for sp in batches}
        for req in tracer.find(name="request", outcome="ok"):
            batch = by_id[req.attrs["batch_span"]]
            assert req.attrs["request_id"] in batch.attrs["request_ids"]
            assert req.attrs["batch_size"] == batch.attrs["batch_size"]


class TestFailoverProvenance:
    def test_failover_hop_is_in_the_trace(self, cluster_run):
        tracer, report, _ = cluster_run
        failover_answers = [r for r in report.responses if r.ok and r.failover]
        assert failover_answers, "the crash produced no failover answers"

        migrations = tracer.find(name="cluster.failover", stage=STAGE_CLUSTER)
        assert len(migrations) == 1
        migration = migrations[0]
        assert migration.attrs["requeued"] > 0

        # Every failover-tagged answer has a failover-tagged route span.
        hops = tracer.find(name="cluster.route", stage=STAGE_CLUSTER, failover=True)
        hop_requests = {(sp.attrs["client_id"], sp.attrs["request_id"]) for sp in hops}
        for resp in failover_answers:
            assert (resp.client_id, resp.request_id) in hop_requests

        # Requeued hops nest under the migration span, away from the victim.
        nested = [sp for sp in hops if sp.parent_id == migration.span_id]
        assert len(nested) == migration.attrs["requeued"]
        assert all(sp.attrs["target"] != migration.attrs["worker"] for sp in nested)

    def test_deliveries_tag_failover_and_quality(self, cluster_run):
        tracer, report, _ = cluster_run
        deliveries = tracer.find(name="cluster.deliver", stage=STAGE_CLUSTER)
        assert len(deliveries) == len(report.responses)
        flagged = [sp for sp in deliveries if sp.attrs["failover"]]
        assert flagged
        assert all(
            sp.attrs["quality"] in ("stale", "fallback")
            for sp in flagged
            if sp.attrs["status"] == "ok"
        )

    def test_victim_request_spans_end_as_drained(self, cluster_run):
        tracer, _, _ = cluster_run
        drained = tracer.find(name="request", stage=STAGE_SERVING, outcome="drained")
        assert drained, "the crash drained no in-flight request spans"
        restarts = [e for e in tracer.events if e.name == "worker.restart"]
        assert len(restarts) == 1


class TestTracedRunShape:
    def test_traced_cluster_run_is_deterministic(self, cluster_run):
        tracer, report, _ = cluster_run
        replay_tracer, replay_report, _ = traced_cluster_run(rng=SEED)
        assert json.dumps(trace_to_dict(tracer), sort_keys=True) == json.dumps(
            trace_to_dict(replay_tracer), sort_keys=True
        )
        assert [r.value for r in report.responses] == [
            r.value for r in replay_report.responses
        ]

    def test_explicit_tracer_is_used(self):
        tr = Tracer()
        out, _, _ = traced_server_run(rng=SEED, max_requests=10, tracer=tr)
        assert out is tr and len(tr) > 0
