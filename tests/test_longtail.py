"""Tests for repro.distributions.longtail — Section 2.1.1 behaviour."""

import numpy as np
import pytest

from repro.core.normal import TWO_SIGMA_COVERAGE
from repro.distributions.longtail import LongTailSpec, coverage_report, sample_long_tailed


class TestLongTailSpec:
    def test_respects_threshold(self):
        spec = LongTailSpec(
            threshold=6.1, bulk_offset=0.6, bulk_std=0.28,
            tail_weight=0.09, tail_start=2.0, tail_scale=0.3,
        )
        data = spec.sample(10_000, rng=0)
        assert data.max() <= 6.1

    def test_bulk_mean(self):
        spec = LongTailSpec(
            threshold=6.0, bulk_offset=0.5, bulk_std=0.1,
            tail_weight=0.1, tail_start=1.0, tail_scale=0.2,
        )
        assert spec.bulk_mean == pytest.approx(5.5)

    def test_median_above_mean(self):
        # Long left tail: median sits above the mean.
        data = sample_long_tailed(20_000, rng=1)
        assert np.median(data) > data.mean()

    def test_zero_samples(self):
        assert sample_long_tailed(0, rng=0).size == 0

    def test_negative_samples_rejected(self):
        spec = LongTailSpec(
            threshold=6.0, bulk_offset=0.5, bulk_std=0.1,
            tail_weight=0.1, tail_start=1.0, tail_scale=0.2,
        )
        with pytest.raises(ValueError):
            spec.sample(-1)

    def test_invalid_tail_weight_rejected(self):
        with pytest.raises(ValueError):
            LongTailSpec(
                threshold=6.0, bulk_offset=0.5, bulk_std=0.1,
                tail_weight=1.0, tail_start=1.0, tail_scale=0.2,
            )

    def test_deterministic_with_seed(self):
        a = sample_long_tailed(100, rng=9)
        b = sample_long_tailed(100, rng=9)
        np.testing.assert_array_equal(a, b)


class TestCoverageReport:
    def test_paper_figure3_shape(self):
        # Section 2.1.1: mean near 5.25, ~91% of values inside the fitted
        # 2-sigma interval instead of the nominal ~95%.
        data = sample_long_tailed(40_000, rng=42)
        report = coverage_report(data)
        assert report.fitted.value.mean == pytest.approx(5.25, abs=0.15)
        assert 0.88 <= report.actual_coverage <= 0.93
        assert report.nominal_coverage == pytest.approx(TWO_SIGMA_COVERAGE)
        assert report.shortfall > 0.02

    def test_normal_data_no_shortfall(self):
        rng = np.random.default_rng(3)
        report = coverage_report(rng.normal(0, 1, 50_000))
        assert abs(report.shortfall) < 0.01

    def test_long_tail_not_normal_by_ks(self):
        data = sample_long_tailed(10_000, rng=4)
        assert not coverage_report(data).fitted.looks_normal()
