"""Regression test for the miscalibrated-model chaos scenario.

The world is twice as variable as the model claims
(``truth_spread_scale=2.0`` — the "structural spread deliberately
halved" scenario), staged on the demo Platform 1 servers whose live
forecasts carry real spread.  The contract (ISSUE 8, satellite 6):

* uncorrected, 2σ-coverage collapses well below the 0.90 SLO floor and
  every answer stays untagged (the claim is wrong, honestly wrong);
* with the recalibrator on, the first widen event lands within two
  control intervals of eligibility, the scale settles above 1.5, and
  rolling coverage recovers to the SLO band;
* every answer served after the widening carries the ``recalibrated``
  tag and its scale — never silent.
"""

import pytest

from repro.calib import (
    REASON_REFIT,
    REASON_WIDEN,
    CalibrationConfig,
    RecalibrationPolicy,
)
from repro.serving import ClosedLoop, LoadDriver, ServerConfig, demo_server

#: Control cadence under test; flushes align with it so decisions are
#: made at the earliest eligible observation.
INTERVAL = 40

#: The SLO floor rolling coverage must recover to (policy default).
SLO_LOW = 0.90

#: The staged distortion: the world's spread vs the model's claim.
DISTORTION = 2.0

REQUESTS = 1200
SEED = 7


def _drive(*, recalibrate):
    calib = CalibrationConfig(
        truth_spread_scale=DISTORTION,
        recalibrate=recalibrate,
        flush_every=INTERVAL,
        policy=RecalibrationPolicy(
            control_interval=INTERVAL, min_observations=INTERVAL
        ),
    )
    server, _, _ = demo_server(
        duration=600.0, config=ServerConfig(calibration=calib), rng=SEED
    )
    driver = LoadDriver(
        server,
        server.models,
        ClosedLoop(clients=16, think_time=0.05),
        max_requests=REQUESTS,
        rng=5,
    )
    report = driver.run()
    assert report.errors == 0
    return server.calibration_summary(), [r for r in report.responses if r.ok]


@pytest.fixture(scope="module")
def uncorrected():
    return _drive(recalibrate=False)


@pytest.fixture(scope="module")
def corrected():
    return _drive(recalibrate=True)


def _merged_coverage(summary) -> float:
    models = summary["scores"]["models"].values()
    return sum(m["coverage"] * m["n"] for m in models) / sum(m["n"] for m in models)


class TestUncorrected:
    def test_coverage_collapses_below_slo(self, uncorrected):
        summary, responses = uncorrected
        assert summary["scores"]["n"] == len(responses) == REQUESTS
        # mean +- 2sigma against a world at 2x the claimed sigma covers
        # ~68%; anything near the SLO floor would mean the chaos knob
        # stopped working.
        assert _merged_coverage(summary) < 0.80
        for score in summary["scores"]["models"].values():
            assert score["rolling_coverage"] < SLO_LOW

    def test_no_silent_tags(self, uncorrected):
        _, responses = uncorrected
        for r in responses:
            assert not r.distribution.recalibrated
            assert r.distribution.scale == 1.0

    def test_no_control_state(self, uncorrected):
        summary, _ = uncorrected
        assert "recalibration" not in summary


class TestCorrected:
    def test_widens_within_two_control_intervals(self, corrected):
        summary, _ = corrected
        events = summary["recalibration"]["events"]
        assert events, "recalibrator never acted under 2x truth spread"
        first_by_model: dict[str, dict] = {}
        for e in events:
            first_by_model.setdefault(e["model"], e)
        assert set(first_by_model) == set(summary["scores"]["models"])
        for first in first_by_model.values():
            assert first["reason"] in (REASON_WIDEN, REASON_REFIT)
            assert first["at_observation"] <= 2 * INTERVAL
            assert first["new_scale"] > first["old_scale"]

    def test_scale_settles_near_the_truth_distortion(self, corrected):
        summary, _ = corrected
        for model, scale in summary["recalibration"]["scales"].items():
            # The conformal solve should land near the true 2x distortion.
            assert 1.5 < scale <= 4.0, (model, scale)

    def test_rolling_coverage_recovers_to_slo(self, corrected):
        summary, _ = corrected
        for model, score in summary["scores"]["models"].items():
            assert score["rolling_coverage"] >= SLO_LOW, (
                model,
                score["rolling_coverage"],
            )

    def test_coverage_beats_uncorrected(self, corrected, uncorrected):
        on, _ = corrected
        off, _ = uncorrected
        assert _merged_coverage(on) > _merged_coverage(off) + 0.1

    def test_post_widen_answers_are_tagged(self, corrected):
        summary, responses = corrected
        first_at = {}
        for e in summary["recalibration"]["events"]:
            first_at.setdefault(e["model"], e["at_observation"])
        seen: dict[str, int] = {}
        tagged = 0
        for r in responses:
            d = r.distribution
            # Never silent, in both directions.
            assert d.recalibrated == (d.scale != 1.0)
            i = seen.get(r.model, 0)
            seen[r.model] = i + 1
            # Decisions apply from the serving batch after the flush
            # that made them; one flush-worth of answers was already in
            # flight untagged.
            if r.model in first_at and i >= first_at[r.model] + INTERVAL:
                assert d.recalibrated and d.scale > 1.0
                # value carries the same widened claim as the block.
                assert r.value.spread == pytest.approx(d.spread, rel=1e-12)
                tagged += 1
        assert tagged > REQUESTS // 2

    def test_flagging_reserved_for_unfixable_models(self, corrected):
        summary, _ = corrected
        # A 2x distortion is inside max_scale=4: widening suffices and
        # no model should be flagged for re-fit.
        assert summary["recalibration"]["flagged"] == []
