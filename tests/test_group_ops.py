"""Tests for repro.core.group_ops — Max/Min strategies (Section 2.3.3)."""

import numpy as np
import pytest

from repro.core.group_ops import (
    MaxStrategy,
    clark_max,
    max_by_endpoint,
    max_by_mean,
    min_by_endpoint,
    min_by_mean,
    monte_carlo_max,
    stochastic_max,
    stochastic_min,
)
from repro.core.stochastic import StochasticValue as SV

# The paper's own example: A = 4 +/- 0.5, B = 3 +/- 2, C = 3 +/- 1.
A, B, C = SV(4.0, 0.5), SV(3.0, 2.0), SV(3.0, 1.0)


class TestPaperExample:
    def test_a_has_largest_mean(self):
        assert max_by_mean([A, B, C]) is A

    def test_b_has_largest_range_endpoint(self):
        assert max_by_endpoint([A, B, C]) is B

    def test_strategies_disagree_as_paper_describes(self):
        by_mean = stochastic_max([A, B, C], MaxStrategy.BY_MEAN)
        by_endpoint = stochastic_max([A, B, C], MaxStrategy.BY_ENDPOINT)
        assert by_mean is A and by_endpoint is B


class TestSelectors:
    def test_min_by_mean(self):
        assert min_by_mean([A, B, C]) in (B, C)
        assert min_by_mean([A, B, C]).mean == 3.0

    def test_min_by_endpoint(self):
        # B's lower endpoint (1.0) is the smallest.
        assert min_by_endpoint([A, B, C]) is B

    def test_tie_keeps_first(self):
        x, y = SV(3.0, 1.0), SV(3.0, 2.0)
        assert max_by_mean([x, y]) is x

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_by_mean([])

    def test_accepts_plain_numbers(self):
        out = max_by_mean([1.0, 5.0, 3.0])
        assert out.mean == 5.0


class TestClarkMax:
    def test_well_separated_returns_larger(self):
        out = clark_max(SV(10.0, 0.2), SV(1.0, 0.2))
        assert out.mean == pytest.approx(10.0, rel=1e-6)
        assert out.std == pytest.approx(0.1, rel=1e-3)

    def test_identical_inputs(self):
        # max of two iid N(0,1): mean = 1/sqrt(pi).
        x = SV.from_std(0.0, 1.0)
        out = clark_max(x, x)
        assert out.mean == pytest.approx(1.0 / np.sqrt(np.pi), rel=1e-6)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        x, y = SV(4.0, 2.0), SV(3.5, 3.0)
        approx = clark_max(x, y)
        mc = monte_carlo_max([x, y], rng=rng, n_samples=400_000)
        assert approx.mean == pytest.approx(mc.mean, rel=0.01)
        assert approx.spread == pytest.approx(mc.spread, rel=0.03)

    def test_mean_at_least_both_means(self):
        out = clark_max(SV(4.0, 2.0), SV(3.9, 2.0))
        assert out.mean >= 4.0

    def test_degenerate_points(self):
        out = clark_max(SV.point(2.0), SV.point(5.0))
        assert out.mean == 5.0 and out.is_point

    def test_perfect_correlation_degenerate(self):
        x = SV(3.0, 1.0)
        out = clark_max(x, x, correlation=1.0)
        assert out.mean == 3.0

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ValueError):
            clark_max(A, B, correlation=1.5)


class TestMonteCarloMax:
    def test_reproducible_with_seed(self):
        a = monte_carlo_max([A, B, C], rng=3)
        b = monte_carlo_max([A, B, C], rng=3)
        assert (a.mean, a.spread) == (b.mean, b.spread)

    def test_mean_exceeds_max_of_means_for_overlapping(self):
        out = monte_carlo_max([SV(3.0, 2.0), SV(3.0, 2.0)], rng=1)
        assert out.mean > 3.0

    def test_small_sample_count_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo_max([A], n_samples=1)


class TestDispatch:
    def test_clark_folds_n_operands(self):
        out = stochastic_max([A, B, C], MaxStrategy.CLARK)
        mc = stochastic_max([A, B, C], MaxStrategy.MONTE_CARLO, rng=0, n_samples=400_000)
        assert out.mean == pytest.approx(mc.mean, rel=0.02)

    def test_min_is_negated_max(self):
        out = stochastic_min([A, B, C], MaxStrategy.CLARK)
        neg = stochastic_max([-A, -B, -C], MaxStrategy.CLARK)
        assert out.mean == pytest.approx(-neg.mean)
        assert out.spread == pytest.approx(neg.spread)

    def test_min_by_mean_via_dispatch(self):
        out = stochastic_min([A, B, C], MaxStrategy.BY_MEAN)
        assert out.mean == 3.0

    def test_single_operand_identity(self):
        for strat in (MaxStrategy.BY_MEAN, MaxStrategy.BY_ENDPOINT, MaxStrategy.CLARK):
            out = stochastic_max([A], strat)
            assert out.mean == pytest.approx(A.mean)
            assert out.spread == pytest.approx(A.spread)
