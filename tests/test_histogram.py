"""Tests for repro.distributions.histogram."""

import numpy as np
import pytest

from repro.distributions.histogram import Histogram, empirical_cdf, empirical_coverage


class TestHistogram:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        h = Histogram.from_data(rng.normal(0, 1, 5000), bins=25)
        widths = np.diff(h.edges)
        assert float((h.density * widths).sum()) == pytest.approx(1.0)

    def test_counts_total(self):
        h = Histogram.from_data([1, 2, 2, 3], bins=3)
        assert int(h.counts.sum()) == 4

    def test_mass_sums_to_one(self):
        h = Histogram.from_data(np.arange(100), bins=10)
        assert float(h.mass.sum()) == pytest.approx(1.0)

    def test_percent_of_values(self):
        h = Histogram.from_data(np.arange(100), bins=10)
        np.testing.assert_allclose(h.percent_of_values(), 10.0)

    def test_centers_between_edges(self):
        h = Histogram.from_data([0.0, 1.0], bins=2)
        assert np.all(h.centers > h.edges[:-1])
        assert np.all(h.centers < h.edges[1:])

    def test_mode_bin(self):
        h = Histogram.from_data([1.0, 5.0, 5.1, 5.2, 9.0], bins=3)
        assert h.mode_bin() == 1

    def test_nbins(self):
        assert Histogram.from_data([1, 2, 3], bins=7).nbins == 7

    def test_explicit_range(self):
        h = Histogram.from_data([0.5], bins=2, range_=(0.0, 1.0))
        assert h.edges[0] == 0.0 and h.edges[-1] == 1.0

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_data([], bins=3)

    def test_zero_bins_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_data([1.0], bins=0)


class TestEmpiricalCdf:
    def test_monotone_and_bounded(self):
        rng = np.random.default_rng(1)
        x, p = empirical_cdf(rng.normal(0, 1, 500))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[0] == pytest.approx(1 / 500)
        assert p[-1] == 1.0

    def test_small_example(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p, [1 / 3, 2 / 3, 1.0])


class TestCoverage:
    def test_all_inside(self):
        assert empirical_coverage([1.0, 2.0, 3.0], 0.0, 4.0) == 1.0

    def test_partial(self):
        assert empirical_coverage([1.0, 2.0, 3.0, 4.0], 1.5, 3.5) == 0.5

    def test_boundary_inclusive(self):
        assert empirical_coverage([1.0, 2.0], 1.0, 2.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            empirical_coverage([1.0], 2.0, 1.0)
