"""Tests for repro.util.stats — scratch statistical primitives."""

import math

import numpy as np
import pytest
from scipy import stats as sps
from scipy.special import erf as scipy_erf

from repro.util.stats import (
    erf,
    mean_and_std,
    normal_cdf,
    normal_pdf,
    normal_quantile,
    sample_kurtosis,
    sample_skewness,
    weighted_mean_and_std,
)


class TestErf:
    def test_scalar_matches_math(self):
        for x in (-3.0, -0.5, 0.0, 0.7, 2.5):
            assert erf(x) == pytest.approx(math.erf(x), abs=1e-15)

    def test_vector_matches_scipy(self):
        xs = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(erf(xs), scipy_erf(xs), atol=2e-7)

    def test_odd_symmetry(self):
        xs = np.linspace(0, 3, 50)
        np.testing.assert_allclose(erf(-xs), -erf(xs), atol=1e-12)

    def test_limits(self):
        assert erf(10.0) == pytest.approx(1.0)
        assert erf(-10.0) == pytest.approx(-1.0)

    def test_scalar_and_array_paths_agree_exactly(self):
        # Regression: the array path used the A&S 7.1.26 approximation
        # (error up to ~1.5e-7) while scalars used math.erf, making
        # erf(x) != erf([x])[0] and normal_cdf input-shape-dependent.
        for x in (-3.0, -0.5, 0.0, 0.3, 0.7, 1.0, 2.5):
            assert erf(x) == erf(np.array([x]))[0]
            assert erf(np.array([x]))[0] == math.erf(x)

    def test_vector_matches_scipy_to_double_precision(self):
        xs = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(erf(xs), scipy_erf(xs), rtol=1e-13, atol=1e-15)

    def test_shapes_and_types(self):
        assert isinstance(erf(0.5), float)
        assert erf(np.array([0.1, 0.2])).shape == (2,)
        assert erf(np.array([[0.1], [0.2]])).shape == (2, 1)
        assert erf(np.array([0.1, 0.2])).dtype == np.float64

    def test_normal_cdf_shape_independent(self):
        for x in (-2.0, -0.3, 0.0, 0.9, 3.1):
            scalar = normal_cdf(x, 1.0, 2.0)
            array = normal_cdf(np.array([x]), 1.0, 2.0)[0]
            assert scalar == array
            assert scalar == pytest.approx(sps.norm.cdf(x, 1.0, 2.0), abs=1e-15)


class TestNormalPdf:
    def test_matches_scipy(self):
        xs = np.linspace(-5, 5, 41)
        np.testing.assert_allclose(
            normal_pdf(xs, 1.0, 2.0), sps.norm.pdf(xs, 1.0, 2.0), rtol=1e-12
        )

    def test_scalar_output_type(self):
        assert isinstance(normal_pdf(0.0), float)

    def test_peak_at_mean(self):
        assert normal_pdf(3.0, 3.0, 0.5) == pytest.approx(1.0 / (0.5 * math.sqrt(2 * math.pi)))

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            normal_pdf(0.0, 0.0, 0.0)


class TestNormalCdf:
    def test_matches_scipy(self):
        xs = np.linspace(-5, 5, 41)
        np.testing.assert_allclose(
            normal_cdf(xs, -1.0, 1.5), sps.norm.cdf(xs, -1.0, 1.5), atol=2e-7
        )

    def test_median(self):
        assert normal_cdf(2.0, 2.0, 3.0) == pytest.approx(0.5)

    def test_point_mass_step(self):
        assert normal_cdf(0.9, 1.0, 0.0) == 0.0
        assert normal_cdf(1.0, 1.0, 0.0) == 1.0
        assert normal_cdf(1.1, 1.0, 0.0) == 1.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            normal_cdf(0.0, 0.0, -1.0)


class TestNormalQuantile:
    def test_matches_scipy(self):
        ps = np.linspace(0.001, 0.999, 97)
        np.testing.assert_allclose(
            normal_quantile(ps, 2.0, 3.0), sps.norm.ppf(ps, 2.0, 3.0), atol=1e-8
        )

    def test_roundtrip_with_cdf(self):
        for p in (0.025, 0.5, 0.8, 0.975):
            x = normal_quantile(p, 1.0, 2.0)
            assert normal_cdf(x, 1.0, 2.0) == pytest.approx(p, abs=1e-7)

    def test_extreme_tails(self):
        assert normal_quantile(1e-10) == pytest.approx(sps.norm.ppf(1e-10), rel=1e-6)

    def test_invalid_probability_rejected(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                normal_quantile(p)

    def test_scalar_output_type(self):
        assert isinstance(normal_quantile(0.3), float)


class TestMoments:
    def test_mean_and_std(self):
        m, s = mean_and_std([1.0, 2.0, 3.0, 4.0])
        assert m == pytest.approx(2.5)
        assert s == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample_zero_std(self):
        m, s = mean_and_std([7.0])
        assert (m, s) == (7.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_std([])

    def test_weighted_mean_and_std(self):
        m, s = weighted_mean_and_std([1.0, 3.0], [1.0, 1.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(1.0)

    def test_weighted_unequal(self):
        m, _ = weighted_mean_and_std([0.0, 10.0], [3.0, 1.0])
        assert m == pytest.approx(2.5)

    def test_weighted_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_mean_and_std([1.0], [-1.0])

    def test_weighted_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_mean_and_std([1.0, 2.0], [0.0, 0.0])

    def test_weighted_rejects_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean_and_std([1.0, 2.0], [1.0])

    def test_skewness_symmetric_near_zero(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 20_000)
        assert abs(sample_skewness(data)) < 0.05

    def test_skewness_positive_for_right_tail(self):
        rng = np.random.default_rng(1)
        data = rng.lognormal(0, 1, 5_000)
        assert sample_skewness(data) > 1.0

    def test_skewness_matches_scipy(self):
        rng = np.random.default_rng(2)
        data = rng.gamma(2.0, 1.0, 500)
        assert sample_skewness(data) == pytest.approx(
            sps.skew(data, bias=False), rel=1e-10
        )

    def test_kurtosis_normal_near_zero(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, 50_000)
        assert abs(sample_kurtosis(data)) < 0.1

    def test_kurtosis_constant_zero(self):
        assert sample_kurtosis([2.0] * 10) == 0.0

    def test_skewness_needs_three(self):
        with pytest.raises(ValueError):
            sample_skewness([1.0, 2.0])

    def test_kurtosis_needs_four(self):
        with pytest.raises(ValueError):
            sample_kurtosis([1.0, 2.0, 3.0])
