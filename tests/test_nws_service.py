"""Tests for repro.nws series, sensors, and the service facade."""

import numpy as np
import pytest

from repro.nws.sensors import NWS_DEFAULT_PERIOD, Sensor
from repro.nws.series import MeasurementSeries
from repro.nws.service import NetworkWeatherService
from repro.workload.traces import Trace


class TestMeasurementSeries:
    def test_append_and_read(self):
        s = MeasurementSeries()
        s.append(0.0, 1.0)
        s.append(5.0, 2.0)
        assert len(s) == 2
        assert s.last_time == 5.0
        assert s.last_value == 2.0
        np.testing.assert_array_equal(s.values(), [1.0, 2.0])

    def test_window_view(self):
        s = MeasurementSeries()
        for i in range(10):
            s.append(float(i), float(i))
        np.testing.assert_array_equal(s.values(3), [7.0, 8.0, 9.0])
        np.testing.assert_array_equal(s.times(3), [7.0, 8.0, 9.0])

    def test_values_since(self):
        s = MeasurementSeries()
        for i in range(10):
            s.append(float(i), float(i * 10))
        np.testing.assert_array_equal(s.values_since(7.0), [70.0, 80.0, 90.0])

    def test_maxlen_bounds_memory(self):
        s = MeasurementSeries(maxlen=3)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s) == 3
        np.testing.assert_array_equal(s.values(), [7.0, 8.0, 9.0])

    def test_time_monotonicity_enforced(self):
        s = MeasurementSeries()
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 1.0)

    def test_empty_accessors_raise(self):
        s = MeasurementSeries()
        with pytest.raises(IndexError):
            _ = s.last_time
        with pytest.raises(IndexError):
            _ = s.last_value

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            MeasurementSeries(maxlen=0)

    def test_nan_reading_rejected(self):
        s = MeasurementSeries()
        with pytest.raises(ValueError, match="finite"):
            s.append(0.0, float("nan"))
        assert len(s) == 0

    def test_inf_reading_rejected(self):
        s = MeasurementSeries()
        with pytest.raises(ValueError, match="finite"):
            s.append(0.0, float("inf"))

    def test_nonfinite_time_rejected(self):
        s = MeasurementSeries()
        with pytest.raises(ValueError, match="finite"):
            s.append(float("nan"), 1.0)

    def test_negative_reading_rejected_by_default(self):
        s = MeasurementSeries()
        with pytest.raises(ValueError, match="negative"):
            s.append(0.0, -0.1)

    def test_negative_reading_allowed_when_opted_in(self):
        s = MeasurementSeries(allow_negative=True)
        s.append(0.0, -0.1)
        assert s.last_value == -0.1
        # Non-finite values stay rejected even then.
        with pytest.raises(ValueError):
            s.append(1.0, float("nan"))


class TestSensor:
    def test_samples_on_cadence(self):
        trace = Trace.from_samples(0.0, 5.0, np.linspace(0.1, 1.0, 20))
        sensor = Sensor(resource="cpu", trace=trace, period=5.0)
        taken = sensor.advance_to(31.0)
        assert taken == 7  # samples at 0, 5, ..., 30
        assert sensor.last_measurement_time == 30.0

    def test_advance_is_incremental(self):
        trace = Trace.constant(0.5)
        sensor = Sensor(resource="cpu", trace=trace, period=5.0)
        sensor.advance_to(10.0)
        assert sensor.advance_to(10.0) == 0
        assert sensor.advance_to(20.0) == 2

    def test_measures_trace_values(self):
        trace = Trace.from_samples(0.0, 5.0, [0.2, 0.8])
        sensor = Sensor(resource="cpu", trace=trace, period=5.0)
        sensor.advance_to(5.0)
        np.testing.assert_array_equal(sensor.series.values(), [0.2, 0.8])

    def test_default_period_matches_paper(self):
        assert NWS_DEFAULT_PERIOD == 5.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Sensor(resource="cpu", trace=Trace.constant(1.0), period=0.0)


class TestService:
    def make_service(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.5))
        nws.register("cpu:b", Trace.from_samples(0.0, 5.0, [0.2, 0.4, 0.6, 0.8] * 50))
        return nws

    def test_register_and_list(self):
        nws = self.make_service()
        assert nws.resources == ["cpu:a", "cpu:b"]

    def test_duplicate_registration_rejected(self):
        nws = self.make_service()
        with pytest.raises(ValueError):
            nws.register("cpu:a", Trace.constant(1.0))

    def test_unknown_resource_rejected(self):
        nws = self.make_service()
        nws.advance_to(50.0)
        with pytest.raises(KeyError, match="cpu:zzz"):
            nws.query("cpu:zzz")

    def test_query_before_measurements_rejected(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.5))
        with pytest.raises(RuntimeError):
            nws.query("cpu:a", t=None)

    def test_query_constant_resource(self):
        nws = self.make_service()
        out = nws.query("cpu:a", t=100.0)
        assert out.mean == pytest.approx(0.5, abs=0.01)
        assert out.spread == pytest.approx(0.0, abs=0.01)

    def test_query_advances_time(self):
        nws = self.make_service()
        nws.query("cpu:a", t=42.0)
        assert nws.now == 42.0

    def test_rewind_rejected(self):
        nws = self.make_service()
        nws.advance_to(100.0)
        with pytest.raises(ValueError):
            nws.advance_to(50.0)

    def test_last_measurement(self):
        nws = self.make_service()
        nws.advance_to(12.0)
        t, v = nws.last_measurement("cpu:a")
        assert t == 10.0 and v == 0.5

    def test_query_window_statistics(self):
        nws = self.make_service()
        nws.advance_to(1000.0)
        out = nws.query_window("cpu:b", 200.0)
        # The cycle 0.2/0.4/0.6/0.8 has mean 0.5.
        assert out.mean == pytest.approx(0.5, abs=0.05)
        assert out.spread > 0.3

    def test_query_window_shorter_than_period_falls_back(self):
        nws = self.make_service()
        nws.advance_to(100.0)
        out = nws.query_window("cpu:a", 0.5)
        assert out.mean == pytest.approx(0.5)

    def test_query_window_invalid_window_rejected(self):
        nws = self.make_service()
        nws.advance_to(10.0)
        with pytest.raises(ValueError):
            nws.query_window("cpu:a", 0.0)


class TestUnregister:
    def test_unregister_frees_the_name(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.5))
        nws.advance_to(50.0)
        old = nws.unregister("cpu:a")
        assert "cpu:a" not in nws.resources
        assert len(old.series) > 0  # history survives for post-mortem
        with pytest.raises(KeyError):
            nws.query("cpu:a")

    def test_unknown_unregister_rejected(self):
        nws = NetworkWeatherService()
        with pytest.raises(KeyError, match="cpu:zzz"):
            nws.unregister("cpu:zzz")

    def test_reregister_after_unregister_starts_clean(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.2))
        nws.advance_to(50.0)
        nws.unregister("cpu:a")
        nws.register("cpu:a", Trace.constant(0.8))
        nws.advance_to(100.0)
        assert len(nws.sensor("cpu:a").series) > 0
        # The fresh sensor only ever saw the new trace.
        assert nws.query("cpu:a").mean == pytest.approx(0.8, abs=0.01)

    def test_register_replace_flag(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.2))
        nws.advance_to(50.0)
        nws.register("cpu:a", Trace.constant(0.9), replace=True)
        nws.advance_to(100.0)
        assert nws.query("cpu:a").mean == pytest.approx(0.9, abs=0.01)

    def test_replace_false_still_rejects_duplicates(self):
        nws = NetworkWeatherService()
        nws.register("cpu:a", Trace.constant(0.2))
        with pytest.raises(ValueError):
            nws.register("cpu:a", Trace.constant(0.9))
