"""Golden-trace regression tests for the end-to-end pipelines.

Each test replays one seeded end-to-end run — Platform 1, Platform 2,
and a served drive over the Platform 1 demo deployment — and compares
the full output trace (predictions, quality tags, metrics) against a
frozen JSON golden under ``tests/goldens/``.  A mismatch means observed
behaviour changed: either a regression, or an intentional change to be
reviewed and re-frozen with ``pytest --update-goldens``.

The runs are deliberately small (a few sizes / runs / hundred
requests): goldens gate *behaviour drift*, not statistical quality —
the platform experiment tests assert the paper's quality bars.
"""

from repro.experiments.platform1 import run_platform1
from repro.experiments.platform2 import run_platform2
from repro.serving import ClosedLoop, LoadDriver, demo_server


def stochastic_payload(sv) -> dict:
    return {"mean": sv.mean, "spread": sv.spread}


def quality_payload(q) -> dict:
    return {
        "capture": q.capture,
        "max_range_error": q.max_range_error,
        "mean_range_error": q.mean_range_error,
        "max_mean_error": q.max_mean_error,
        "mean_mean_error": q.mean_mean_error,
        "n": q.n,
    }


def test_platform1_trace_is_frozen(golden):
    result = run_platform1(sizes=(600, 800, 1000), iterations=10, rng=11)
    golden(
        "platform1_seed11",
        {
            "stochastic_load": stochastic_payload(result.stochastic_load),
            "points": [
                {
                    "problem_size": p.problem_size,
                    "prediction": stochastic_payload(p.prediction),
                    "actual": p.actual,
                }
                for p in result.points
            ],
            "quality": quality_payload(result.quality),
        },
    )


def test_platform2_trace_is_frozen(golden):
    result = run_platform2(600, n_runs=5, iterations=10, rng=42)
    golden(
        "platform2_seed42",
        {
            "problem_size": result.problem_size,
            "points": [
                {
                    "timestamp": p.timestamp,
                    "prediction": stochastic_payload(p.prediction),
                    "actual": p.actual,
                    "loads": [stochastic_payload(v) for v in p.loads],
                }
                for p in result.points
            ],
            "quality": quality_payload(result.quality),
        },
    )


def test_serving_trace_is_frozen(golden):
    server, _, _ = demo_server(duration=600.0, rng=7)
    driver = LoadDriver(
        server,
        server.models,
        ClosedLoop(clients=4, think_time=0.5),
        max_requests=120,
        rng=7,
    )
    report = driver.run()
    snapshot = server.metrics.snapshot()
    golden(
        "serving_seed7",
        {
            "responses": [
                {
                    "request_id": r.request_id,
                    "client_id": r.client_id,
                    "model": r.model,
                    "completed": r.completed,
                    "latency": r.latency,
                    "quality": r.quality,
                    "staleness": r.staleness,
                    "batch_size": r.batch_size,
                    "value": stochastic_payload(r.value),
                    "p95": r.p95,
                }
                for r in report.responses
                if r.ok
            ],
            "summary": {
                "submitted": report.submitted,
                "ok": report.ok,
                "shed": report.shed,
                "errors": report.errors,
                "qualities": report.qualities,
            },
            "metrics": {
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
            },
        },
    )
