"""Unit tests for the sharded serving cluster and its router.

Covers the pieces the chaos soak exercises only implicitly: consistent
hashing and balanced primary election, health-aware routing, cluster
admission (global token bucket, no-healthy-owner shedding), the worker
drain/restart hooks, exact histogram merging, and the JSON snapshot.
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.serving import (
    ClosedLoop,
    ClusterConfig,
    Histogram,
    LoadDriver,
    PredictRequest,
    ServerConfig,
    demo_cluster,
    demo_server,
)
from repro.serving.protocol import SHED_THROTTLED, SHED_UNAVAILABLE
from repro.serving.router import ClusterRouter, HashRing, bindings_fingerprint, stable_hash
from repro.structural.parameters import Bindings

WORKERS = [f"worker-{i}" for i in range(4)]


def request(model: str, request_id: int = 0, submitted: float = 60.0) -> PredictRequest:
    return PredictRequest(
        request_id=request_id, client_id="c0", model=model, submitted=submitted
    )


class TestHashing:
    def test_stable_hash_is_deterministic_and_64_bit(self):
        assert stable_hash("sor-1000") == stable_hash("sor-1000")
        assert 0 <= stable_hash("sor-1000") < 2**64
        assert stable_hash("sor-1000") != stable_hash("sor-1001")

    def test_bindings_fingerprint_separates_platforms(self):
        a = Bindings({"w": 2.0, "n": 600})
        b = Bindings({"w": 2.5, "n": 600})
        assert bindings_fingerprint(a) == bindings_fingerprint(Bindings({"w": 2.0, "n": 600}))
        assert bindings_fingerprint(a) != bindings_fingerprint(b)


class TestHashRing:
    def test_owners_are_distinct_and_capped(self):
        ring = HashRing(WORKERS, vnodes=32)
        owners = ring.owners("sor-1000", 3)
        assert len(owners) == len(set(owners)) == 3
        assert ring.owners("sor-1000", 10) == ring.owners("sor-1000", 4)

    def test_placement_is_deterministic(self):
        a = HashRing(WORKERS, vnodes=32)
        b = HashRing(list(reversed(WORKERS)), vnodes=32)
        for key in ("sor-600", "sor-1000", "sor-1600"):
            assert a.owners(key, 2) == b.owners(key, 2)

    def test_removing_a_node_only_moves_its_keys(self):
        full = HashRing(WORKERS, vnodes=64)
        reduced = HashRing(WORKERS[:-1], vnodes=64)
        keys = [f"shard-{i}" for i in range(200)]
        moved = sum(
            1
            for k in keys
            if full.owners(k, 1) != reduced.owners(k, 1)
            and full.owners(k, 1)[0] != WORKERS[-1]
        )
        # Keys not owned by the removed node overwhelmingly stay put.
        assert moved == 0

    def test_rejects_empty_and_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(WORKERS, vnodes=0)


class TestClusterRouter:
    def test_primary_election_balances_load(self):
        router = ClusterRouter(WORKERS, replication=2, vnodes=64)
        for i in range(16):
            router.owners(f"shard-{i}")
        primaries = [len(router.shards_of(w, (f"shard-{i}" for i in range(16)))) for w in WORKERS]
        assert sum(primaries) == 16
        # A raw ring can put half the shards on one worker; balanced
        # election keeps the spread tight.
        assert max(primaries) - min(primaries) <= 2

    def test_route_prefers_the_primary(self):
        router = ClusterRouter(WORKERS, replication=2)
        owners = router.owners("shard-0")
        assert router.route("shard-0", set(WORKERS)) == (owners[0], False)

    def test_route_fails_over_in_owner_order(self):
        router = ClusterRouter(WORKERS, replication=3)
        owners = router.owners("shard-0")
        healthy = set(WORKERS) - {owners[0]}
        assert router.route("shard-0", healthy) == (owners[1], True)
        assert router.route("shard-0", healthy - {owners[1]}) == (owners[2], True)

    def test_route_with_no_healthy_owner(self):
        router = ClusterRouter(WORKERS, replication=2)
        owners = router.owners("shard-0")
        assert router.route("shard-0", set(WORKERS) - set(owners)) == (None, True)

    def test_replication_capped_at_worker_count(self):
        router = ClusterRouter(WORKERS[:2], replication=5)
        assert router.replication == 2
        assert len(router.owners("shard-0")) == 2

    def test_placement_lists_every_shard(self):
        router = ClusterRouter(WORKERS, replication=2)
        keys = [f"shard-{i}" for i in range(6)]
        placement = router.placement(keys)
        assert sorted(placement) == sorted(keys)
        assert all(len(owners) == 2 for owners in placement.values())


@pytest.fixture(scope="module")
def quiet_cluster():
    """A short-warmup 4-worker cluster, not yet driven."""
    cluster, _, _ = demo_cluster(
        duration=600.0,
        config=ClusterConfig(n_workers=4, replication=2),
        rng=3,
    )
    return cluster


class TestClusterSurface:
    def test_models_and_owners(self, quiet_cluster):
        assert quiet_cluster.models == ["sor-1000", "sor-1600", "sor-600"]
        for model in quiet_cluster.models:
            owners = quiet_cluster.owners(model)
            assert len(owners) == 2
            assert set(owners) <= set(quiet_cluster.workers)

    def test_duplicate_registration_rejected(self, quiet_cluster):
        spec = quiet_cluster.workers["worker-0"]._models["sor-600"]  # noqa: SLF001
        with pytest.raises(ValueError, match="already registered"):
            quiet_cluster.register_model(spec)

    def test_unknown_model_is_a_typed_error(self, quiet_cluster):
        resp = quiet_cluster.submit(request("sor-9999"))
        assert resp is not None and resp.status == "error"
        assert "sor-9999" in resp.message
        assert quiet_cluster.metrics.counter("errors_total").value >= 1

    def test_step_backwards_rejected(self, quiet_cluster):
        with pytest.raises(ValueError, match="backwards"):
            quiet_cluster.step(quiet_cluster.now - 1.0)


class TestClusterAdmission:
    def test_global_token_bucket_sheds_with_retry_advice(self):
        cluster, _, _ = demo_cluster(
            duration=300.0,
            config=ClusterConfig(n_workers=2, cluster_rate=0.5, cluster_burst=1.0),
            rng=3,
        )
        first = cluster.submit(request("sor-600", request_id=0))
        second = cluster.submit(request("sor-600", request_id=1))
        assert first is None  # admitted
        assert second is not None and second.status == "overloaded"
        assert second.reason == SHED_THROTTLED
        assert second.retry_after >= 0.0
        assert cluster.metrics.counter("shed_total").value == 1

    def test_all_owners_down_sheds_unavailable(self):
        faults = FaultPlan.crashes(
            {name: [(0.0, 10_000.0)] for name in (f"worker-{i}" for i in range(4))}
        )
        cluster, _, _ = demo_cluster(
            duration=300.0,
            config=ClusterConfig(n_workers=4, replication=2),
            faults=faults,
            rng=3,
        )
        assert cluster.healthy_workers == []
        resp = cluster.submit(request("sor-600"))
        assert resp is not None and resp.status == "overloaded"
        assert resp.reason == SHED_UNAVAILABLE
        assert resp.retry_after == float("inf")


class TestWorkerHooks:
    def test_drain_returns_queued_requests_and_empties_the_worker(self):
        server, _, _ = demo_server(duration=300.0, rng=3)
        for i in range(5):
            assert server.submit(request("sor-600", request_id=i)) is None
        assert server.queue_depth == 5
        dropped = server.drain()
        assert [r.request_id for r in dropped] == [0, 1, 2, 3, 4]
        assert server.queue_depth == 0
        assert server.step(server.now + 5.0) == []

    def test_restart_jumps_the_clock_and_colds_the_cache(self):
        server, _, _ = demo_server(duration=300.0, rng=3)
        server.submit(request("sor-600"))
        server.step(server.now + 1.0)
        assert server.forecasts.stats()["entries"] > 0
        server.restart(server.now + 42.0)
        assert server.forecasts.stats()["entries"] == 0
        assert server.queue_depth == 0
        assert server.metrics.counter("restarts_total").value == 1

    def test_restart_cannot_go_backwards(self):
        server, _, _ = demo_server(duration=300.0, rng=3)
        with pytest.raises(ValueError):
            server.restart(server.now - 1.0)


class TestHistogramMerging:
    def test_merged_quantiles_are_exact_over_the_union(self):
        a, b = Histogram("latency_s"), Histogram("latency_s")
        for v in (0.010, 0.020, 0.030):
            a.observe(v)
        for v in (0.040, 0.050):
            b.observe(v)
        merged = Histogram.merged("latency_s", [a, b])
        assert merged.count == 5
        assert merged.quantile(0.5) == 0.030
        assert sorted(merged.values) == [0.010, 0.020, 0.030, 0.040, 0.050]

    def test_merged_rejects_mismatched_bounds(self):
        a = Histogram("x", bounds=(1.0, 2.0))
        b = Histogram("x", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="differing bounds"):
            Histogram.merged("x", [a, b])

    def test_merging_nothing_is_empty(self):
        merged = Histogram.merged("x", [])
        assert merged.count == 0


class TestDrivenCluster:
    @pytest.fixture(scope="class")
    def driven(self):
        cluster, _, _ = demo_cluster(
            duration=600.0,
            config=ClusterConfig(n_workers=4, replication=2),
            rng=5,
        )
        driver = LoadDriver(
            cluster, cluster.models, ClosedLoop(clients=8), max_requests=200, rng=5
        )
        return cluster, driver.run()

    def test_healthy_drive_routes_to_primaries_only(self, driven):
        cluster, report = driven
        assert report.ok == 200 and report.errors == 0
        for resp in report.responses:
            assert resp.worker == cluster.owners(resp.model)[0]
            assert not resp.failover

    def test_snapshot_is_json_and_aggregates_exactly(self, driven):
        cluster, report = driven
        snap = cluster.snapshot()
        json.dumps(snap)  # must be serialisable as-is
        per_worker = sum(
            w["metrics"]["histograms"]["latency_s"].get("count", 0)
            for w in snap["workers"].values()
        )
        assert snap["aggregated"]["latency_s"]["count"] == per_worker == report.ok
        assert snap["cluster"]["counters"]["responses_ok"] == report.ok
        assert snap["cluster"]["gauges"]["workers_up"] == 4
        assert snap["in_flight"] == 0
        assert sorted(snap["shards"]) == sorted(cluster._shards.values())  # noqa: SLF001

    def test_drive_is_bit_reproducible(self, driven):
        _, report = driven
        cluster2, _, _ = demo_cluster(
            duration=600.0,
            config=ClusterConfig(n_workers=4, replication=2),
            rng=5,
        )
        driver2 = LoadDriver(
            cluster2, cluster2.models, ClosedLoop(clients=8), max_requests=200, rng=5
        )
        replay = driver2.run()
        assert [
            (r.request_id, r.client_id, r.worker, r.completed, r.quality)
            for r in replay.responses
        ] == [
            (r.request_id, r.client_id, r.worker, r.completed, r.quality)
            for r in report.responses
        ]
        assert [r.value for r in replay.responses] == [r.value for r in report.responses]
