"""Tests for repro.cluster machines, network, and event kernel."""

import numpy as np
import pytest

from repro.cluster.events import EventQueue, Simulation
from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.workload.traces import Trace


class TestMachine:
    def test_benchmark_time(self):
        m = Machine("m", 4.0)
        assert m.benchmark_time == 0.25

    def test_compute_finish_dedicated(self):
        m = Machine("m", 10.0)
        assert m.compute_finish(50.0, 2.0) == pytest.approx(7.0)

    def test_compute_finish_with_load(self):
        m = Machine("m", 10.0, availability=Trace.constant(0.5))
        assert m.compute_finish(50.0, 0.0) == pytest.approx(10.0)

    def test_with_availability(self):
        m = Machine("m", 10.0)
        m2 = m.with_availability(Trace.constant(0.25))
        assert m2.compute_finish(10.0, 0.0) == pytest.approx(4.0)
        assert m.compute_finish(10.0, 0.0) == pytest.approx(1.0)

    def test_dedicated_copy(self):
        m = Machine("m", 10.0, availability=Trace.constant(0.5))
        assert m.dedicated().compute_finish(10.0, 0.0) == pytest.approx(1.0)

    def test_memory_check(self):
        m = Machine("m", 10.0, memory_elements=100.0)
        assert m.fits_in_memory(100.0)
        assert not m.fits_in_memory(101.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Machine("m", 0.0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            Machine("m", 1.0, memory_elements=0.0)


class TestSharedEthernet:
    def test_transfer_time(self):
        seg = SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.01)
        assert seg.transfer_finish(500.0, 1.0) == pytest.approx(1.51)

    def test_zero_bytes_latency_only(self):
        seg = SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.01)
        assert seg.transfer_finish(0.0, 1.0) == pytest.approx(1.01)

    def test_availability_scales_time(self):
        seg = SharedEthernet(
            dedicated_bytes_per_sec=1000.0, availability=Trace.constant(0.5), latency=0.0
        )
        assert seg.transfer_finish(500.0, 0.0) == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SharedEthernet().transfer_finish(-1.0, 0.0)

    def test_with_availability(self):
        seg = SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0)
        seg2 = seg.with_availability(Trace.constant(0.25))
        assert seg2.transfer_finish(250.0, 0.0) == pytest.approx(1.0)


class TestNetwork:
    def test_default_segment_everywhere(self):
        net = Network(SharedEthernet(dedicated_bytes_per_sec=2000.0))
        assert net.dedicated_bandwidth("a", "b") == 2000.0
        assert net.dedicated_bandwidth("x", "y") == 2000.0

    def test_override_is_symmetric(self):
        net = Network()
        fast = SharedEthernet(dedicated_bytes_per_sec=1e9)
        net.set_link("a", "b", fast)
        assert net.link("a", "b") is fast
        assert net.link("b", "a") is fast
        assert net.link("a", "c") is net.default_segment

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Network().link("a", "a")

    def test_transfer_finish_delegates(self):
        net = Network(SharedEthernet(dedicated_bytes_per_sec=100.0, latency=0.0))
        assert net.transfer_finish("a", "b", 50.0, 0.0) == pytest.approx(0.5)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.pop().action()
        q.pop().action()
        assert order == ["a", "b"]

    def test_fifo_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append(1))
        q.push(1.0, lambda: order.append(2))
        q.pop().action()
        q.pop().action()
        assert order == [1, 2]

    def test_pop_empty_rejected(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, lambda: None)
        assert q.peek_time() == 3.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, lambda: None)
        assert q and len(q) == 1


class TestSimulation:
    def test_run_until_executes_due_events(self):
        sim = Simulation()
        hits = []
        sim.at(1.0, lambda: hits.append(sim.now))
        sim.at(5.0, lambda: hits.append(sim.now))
        sim.run_until(3.0)
        assert hits == [1.0]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert hits == [1.0, 5.0]

    def test_after(self):
        sim = Simulation(start=10.0)
        hits = []
        sim.after(2.5, lambda: hits.append(sim.now))
        sim.run_all()
        assert hits == [12.5]

    def test_events_can_schedule_events(self):
        sim = Simulation()
        hits = []

        def first():
            hits.append("first")
            sim.after(1.0, lambda: hits.append("second"))

        sim.at(1.0, first)
        sim.run_until(5.0)
        assert hits == ["first", "second"]

    def test_every_fixed_cadence(self):
        sim = Simulation()
        stamps = []
        sim.every(5.0, stamps.append, until=22.0)
        sim.run_until(30.0)
        assert stamps == [5.0, 10.0, 15.0, 20.0]

    def test_past_scheduling_rejected(self):
        sim = Simulation(start=5.0)
        with pytest.raises(ValueError):
            sim.at(4.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_rewind_rejected(self):
        sim = Simulation(start=5.0)
        with pytest.raises(ValueError):
            sim.run_until(4.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Simulation().every(0.0, lambda t: None, until=10.0)
