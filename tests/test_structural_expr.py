"""Tests for repro.structural.expr — the structural-model expression AST."""

import pytest

from repro.core.arithmetic import Relatedness, ReciprocalRule
from repro.core.group_ops import MaxStrategy
from repro.core.stochastic import StochasticValue as SV
from repro.structural.expr import (
    Add,
    Const,
    Div,
    EvalPolicy,
    Max,
    Min,
    Mul,
    Param,
    Sub,
    Sum,
    as_expr,
)
from repro.structural.parameters import Bindings

B = Bindings({"x": SV(8.0, 2.0), "y": SV(5.0, 1.5), "p": 3.0})


class TestLeaves:
    def test_const(self):
        assert Const(SV(1.0, 0.5)).evaluate(B) == SV(1.0, 0.5)

    def test_param(self):
        assert Param("x").evaluate(B) == SV(8.0, 2.0)

    def test_param_unbound(self):
        with pytest.raises(KeyError):
            Param("zzz").evaluate(B)

    def test_params_sets(self):
        assert Param("x").params() == {"x"}
        assert Const(SV.point(1.0)).params() == set()

    def test_as_expr_coercions(self):
        assert isinstance(as_expr(2.0), Const)
        assert isinstance(as_expr(SV(1.0, 0.1)), Const)
        e = Param("x")
        assert as_expr(e) is e


class TestOperatorSugar:
    def test_add_sub_mul_div_nodes(self):
        e = (Param("x") + Param("y")) * 2.0 - Param("p") / 3.0
        assert isinstance(e, Sub)
        assert e.params() == {"x", "y", "p"}

    def test_reflected_operators(self):
        e1 = 1.0 + Param("x")
        e2 = 1.0 - Param("x")
        e3 = 2.0 * Param("x")
        e4 = 1.0 / Param("x")
        assert isinstance(e1, Add) and isinstance(e2, Sub)
        assert isinstance(e3, Mul) and isinstance(e4, Div)
        assert e2.evaluate(B).mean == pytest.approx(-7.0)
        assert e4.evaluate(B).mean == pytest.approx(1.0 / 8.0)


class TestPolicies:
    def test_default_policy_related(self):
        out = Add(Param("x"), Param("y")).evaluate(B)
        assert out.spread == pytest.approx(3.5)  # related: |a| sum

    def test_unrelated_policy(self):
        policy = EvalPolicy(relatedness=Relatedness.UNRELATED)
        out = Add(Param("x"), Param("y")).evaluate(B, policy)
        assert out.spread == pytest.approx((2.0**2 + 1.5**2) ** 0.5)

    def test_division_rule_selection(self):
        lit = EvalPolicy(reciprocal_rule=ReciprocalRule.PAPER_LITERAL)
        default = Div(Const(SV.point(1.0)), Param("y")).evaluate(B)
        literal = Div(Const(SV.point(1.0)), Param("y")).evaluate(B, lit)
        assert literal.spread > default.spread

    def test_mul_point_exact(self):
        out = Mul(Const(SV.point(3.0)), Param("x")).evaluate(B)
        assert (out.mean, out.spread) == (24.0, 6.0)


class TestGroupNodes:
    def test_max_by_mean_default(self):
        out = Max(Param("x"), Param("y")).evaluate(B)
        assert out == SV(8.0, 2.0)

    def test_max_by_endpoint(self):
        policy = EvalPolicy(max_strategy=MaxStrategy.BY_ENDPOINT)
        vals = Bindings({"a": SV(4.0, 0.5), "b": SV(3.0, 2.0)})
        out = Max(Param("a"), Param("b")).evaluate(vals, policy)
        assert out == SV(3.0, 2.0)

    def test_max_clark(self):
        policy = EvalPolicy(max_strategy=MaxStrategy.CLARK)
        out = Max(Param("x"), Param("y")).evaluate(B, policy)
        assert out.mean >= 8.0

    def test_max_monte_carlo_seeded(self):
        policy = EvalPolicy(max_strategy=MaxStrategy.MONTE_CARLO, mc_rng=5, mc_samples=5000)
        out1 = Max(Param("x"), Param("y")).evaluate(B, policy)
        policy2 = EvalPolicy(max_strategy=MaxStrategy.MONTE_CARLO, mc_rng=5, mc_samples=5000)
        out2 = Max(Param("x"), Param("y")).evaluate(B, policy2)
        assert out1 == out2

    def test_min(self):
        out = Min(Param("x"), Param("y")).evaluate(B)
        assert out.mean == 5.0

    def test_empty_max_rejected(self):
        with pytest.raises(ValueError):
            Max()

    def test_max_params_union(self):
        assert Max(Param("x"), Param("y")).params() == {"x", "y"}

    def test_max_accepts_literals(self):
        out = Max(1.0, 5.0, Param("p")).evaluate(B)
        assert out.mean == 5.0


class TestSum:
    def test_nary_related_rule(self):
        out = Sum(Param("x"), Param("y"), Const(SV(1.0, 0.5))).evaluate(B)
        assert out.mean == pytest.approx(14.0)
        assert out.spread == pytest.approx(4.0)

    def test_nary_unrelated_rule(self):
        policy = EvalPolicy(relatedness=Relatedness.UNRELATED)
        out = Sum(Const(SV(0.0, 3.0)), Const(SV(0.0, 4.0))).evaluate(B, policy)
        assert out.spread == pytest.approx(5.0)

    def test_empty_sum(self):
        out = Sum().evaluate(B)
        assert out.is_point and out.mean == 0.0
