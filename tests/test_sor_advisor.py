"""Tests for repro.scheduling.sor_advisor — decomposition selection."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.core.stochastic import StochasticValue as SV
from repro.scheduling.sor_advisor import advise_decomposition
from repro.workload.traces import Trace


def heterogeneous_machines():
    return [
        Machine("slow", 2.5e5),
        Machine("mid", 5.0e5),
        Machine("fast", 2.0e6),
    ]


DEDICATED = {0: SV.point(1.0), 1: SV.point(1.0), 2: SV.point(1.0)}


class TestCandidates:
    def test_candidate_labels_present(self):
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, DEDICATED, lam=1.0
        )
        labels = {c.label for c in choice.candidates}
        assert "equal" in labels
        assert "mean-balanced" in labels
        assert any(l.startswith("risk-balanced") for l in labels)
        assert any(l.startswith("drop ") for l in labels)

    def test_no_risk_candidate_at_lam_zero(self):
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, DEDICATED, lam=0.0
        )
        assert not any(c.label.startswith("risk-balanced") for c in choice.candidates)

    def test_drops_disabled(self):
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, DEDICATED, consider_drops=False
        )
        assert not any(c.label.startswith("drop ") for c in choice.candidates)

    def test_candidates_sorted_by_objective(self):
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, DEDICATED, lam=1.0
        )
        objectives = [c.objective for c in choice.candidates]
        assert objectives == sorted(objectives)
        assert choice.best is choice.candidates[0]


class TestDecisions:
    def test_balanced_beats_equal_on_heterogeneous(self):
        # Large problem: compute dominates communication, so keeping the
        # slow machine (with a proportionally small strip) wins.
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 2000, 10, DEDICATED
        )
        by_label = {c.label: c for c in choice.candidates}
        assert (
            by_label["mean-balanced"].prediction.mean < by_label["equal"].prediction.mean
        )
        assert choice.best.label == "mean-balanced"

    def test_small_problem_may_drop_slow_machine(self):
        # Small problem: the slow machine's capacity contribution is not
        # worth the extra exchange phases — a drop candidate can win.
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, DEDICATED
        )
        by_label = {c.label: c for c in choice.candidates}
        assert by_label["drop slow"].prediction.mean < by_label["equal"].prediction.mean

    def test_equal_optimal_for_identical_machines(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(3)]
        loads = {i: SV.point(1.0) for i in range(3)}
        choice = advise_decomposition(machines, Network(), 600, 10, loads)
        by_label = {c.label: c for c in choice.candidates}
        # Equal and mean-balanced coincide; neither drop can win.
        assert by_label["equal"].prediction.mean == pytest.approx(
            by_label["mean-balanced"].prediction.mean
        )
        assert choice.best.label in ("equal", "mean-balanced")

    def test_risk_aversion_can_drop_a_volatile_machine(self):
        # The volatile machine is slightly slower on average (so the Max
        # over computation components inherits its variance) but still
        # fast enough that a risk-neutral advisor keeps it.
        machines = [Machine("stable", 5e5), Machine("volatile", 5e5)]
        loads = {0: SV(0.8, 0.05), 1: SV(0.7, 0.6)}
        neutral = advise_decomposition(machines, Network(), 2000, 10, loads, lam=0.0)
        averse = advise_decomposition(machines, Network(), 2000, 10, loads, lam=3.0)
        assert len(neutral.best.machine_indices) == 2
        assert neutral.best.label == "mean-balanced"
        # The risk-averse pick sidelines the volatile machine — either
        # dropping it or shrinking its strip to the minimum — and its
        # prediction spread collapses accordingly.
        assert averse.best.label in ("drop volatile", "risk-balanced(lam=3)")
        assert averse.best.prediction.spread < 0.5 * neutral.best.prediction.spread

    def test_unlisted_loads_default_dedicated(self):
        choice = advise_decomposition(
            heterogeneous_machines(), Network(), 600, 10, {0: SV(0.5, 0.1)}
        )
        assert choice.best.prediction.mean > 0

    def test_memory_limits_filter_candidates(self):
        machines = [
            Machine("tiny", 1e5, memory_elements=100.0),
            Machine("big", 1e5),
        ]
        loads = {0: SV.point(1.0), 1: SV.point(1.0)}
        choice = advise_decomposition(machines, Network(), 600, 10, loads)
        # Every surviving candidate must avoid overloading "tiny".
        for c in choice.candidates:
            if 0 in c.machine_indices:
                p = c.machine_indices.index(0)
                assert c.decomposition.elements(p) <= 100.0

    def test_negative_lam_rejected(self):
        with pytest.raises(ValueError):
            advise_decomposition(heterogeneous_machines(), Network(), 600, 10, DEDICATED, lam=-1)

    def test_empty_machines_rejected(self):
        with pytest.raises(ValueError):
            advise_decomposition([], Network(), 600, 10, {})
