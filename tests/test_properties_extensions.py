"""Property-based tests for the extension layers (empirical, batch, QoS)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arithmetic import Relatedness, add
from repro.core.empirical import EmpiricalValue
from repro.core.stochastic import StochasticValue
from repro.scheduling.allocation import allocate_inverse_time, completion_times
from repro.scheduling.qos import ServiceRange
from repro.scheduling.strategies import allocate_risk_averse

clouds = st.lists(
    st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False), min_size=2, max_size=40
)


@st.composite
def cloud_pairs(draw):
    """Two sample clouds of equal size (exact arithmetic, no resampling)."""
    n = draw(st.integers(2, 40))
    elems = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
    a = draw(st.lists(elems, min_size=n, max_size=n))
    b = draw(st.lists(elems, min_size=n, max_size=n))
    return a, b
sv_means = st.floats(-1e3, 1e3, allow_nan=False)
sv_spreads = st.floats(0.0, 1e3, allow_nan=False)


class TestEmpiricalProperties:
    @given(cloud_pairs())
    def test_add_means_always_sum(self, pair):
        a, b = pair
        x, y = EmpiricalValue.from_samples(a), EmpiricalValue.from_samples(b)
        for rel in Relatedness:
            out = x.add(y, rel, rng=0)
            assert out.mean == pytest.approx(x.mean + y.mean, rel=1e-9, abs=1e-6)

    @given(clouds)
    def test_scale_shift_exact(self, a):
        x = EmpiricalValue.from_samples(a)
        assert x.scale(3.0).mean == pytest.approx(3.0 * x.mean, rel=1e-9, abs=1e-9)
        assert x.shift(5.0).mean == pytest.approx(x.mean + 5.0, rel=1e-9, abs=1e-9)
        assert x.scale(-2.0).std == pytest.approx(2.0 * x.std, rel=1e-9, abs=1e-9)

    @given(cloud_pairs())
    def test_related_add_spread_dominates_unrelated(self, pair):
        # Comonotonic coupling maximises the variance of a sum.
        a, b = pair
        x, y = EmpiricalValue.from_samples(a), EmpiricalValue.from_samples(b)
        rel = x.add(y, Relatedness.RELATED)
        unrel = x.add(y, Relatedness.UNRELATED, rng=1)
        assert rel.std >= unrel.std - 1e-9 * max(rel.std, 1.0) - 1e-9

    @given(clouds)
    def test_quantiles_monotone(self, a):
        x = EmpiricalValue.from_samples(a)
        qs = [x.quantile(p) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert qs == sorted(qs)

    @given(st.integers(2, 30), st.integers(1, 4), st.randoms(use_true_random=False))
    def test_maximum_dominates_component_means(self, n, k, rnd):
        # Equal-size clouds: no quantile resampling, so the dominance
        # E[max] >= max(E[X_i]) holds exactly up to float error.
        groups = [[rnd.uniform(-100, 100) for _ in range(n)] for _ in range(k)]
        values = [EmpiricalValue.from_samples(g) for g in groups]
        out = EmpiricalValue.maximum(values, rng=2)
        assert out.mean >= max(v.mean for v in values) - 1e-6 * (
            1 + abs(out.mean)
        )

    @given(clouds)
    def test_to_stochastic_roundtrip_summary(self, a):
        x = EmpiricalValue.from_samples(a)
        sv = x.to_stochastic()
        assert sv.mean == pytest.approx(x.mean, rel=1e-9, abs=1e-9)
        assert sv.spread == pytest.approx(2 * x.std, rel=1e-9, abs=1e-9)


unit_times = st.lists(
    st.builds(
        StochasticValue,
        st.floats(0.1, 100.0, allow_nan=False),
        st.floats(0.0, 50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=6,
)


class TestAllocationProperties:
    @settings(max_examples=60)
    @given(st.integers(0, 500), unit_times)
    def test_total_units_preserved(self, total, times):
        alloc = allocate_inverse_time(total, times)
        assert alloc.total == total
        assert all(u >= 0 for u in alloc.units)

    @settings(max_examples=60)
    @given(st.integers(1, 500), unit_times, st.floats(0.0, 5.0, allow_nan=False))
    def test_risk_averse_total_preserved(self, total, times, lam):
        alloc = allocate_risk_averse(total, times, lam)
        assert alloc.total == total

    @settings(max_examples=60)
    @given(st.integers(1, 500), unit_times)
    def test_faster_machine_never_gets_less(self, total, times):
        alloc = allocate_inverse_time(total, times)
        means = [t.mean for t in times]
        for i in range(len(times)):
            for j in range(len(times)):
                if means[i] < means[j]:
                    # Faster (smaller unit time) machine gets at least as
                    # many units, modulo rounding by one.
                    assert alloc.units[i] >= alloc.units[j] - 1

    @settings(max_examples=60)
    @given(st.integers(1, 200), unit_times)
    def test_completion_time_means_scale_with_units(self, total, times):
        alloc = allocate_inverse_time(total, times)
        for u, t, c in zip(alloc.units, times, completion_times(alloc)):
            assert c.mean == pytest.approx(u * t.mean, rel=1e-9, abs=1e-9)


class TestServiceRangeProperties:
    @settings(max_examples=60)
    @given(
        st.floats(-100, 100, allow_nan=False),
        st.floats(0.01, 100, allow_nan=False),
        st.floats(0.05, 0.95),
    )
    def test_guaranteed_bound_roundtrip(self, mean, spread, confidence):
        sr = ServiceRange(StochasticValue(mean, spread))
        bound = sr.guaranteed_bound(confidence)
        assert sr.violation_probability(bound) == pytest.approx(
            1.0 - confidence, abs=1e-6
        )

    @settings(max_examples=60)
    @given(st.floats(-100, 100, allow_nan=False), st.floats(0.01, 100, allow_nan=False))
    def test_violation_probability_monotone_in_bound(self, mean, spread):
        sr = ServiceRange(StochasticValue(mean, spread))
        bounds = np.linspace(mean - 3 * spread, mean + 3 * spread, 7)
        probs = [sr.violation_probability(float(b)) for b in bounds]
        assert probs == sorted(probs, reverse=True)
