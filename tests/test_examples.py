"""Smoke tests: every example script runs cleanly and tells its story."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Import an example module by path and execute its main()."""
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "bandwidth" in out
        assert "Max (Clark)" in out
        assert "95th percentile" in out

    def test_two_machine_scheduling(self, capsys):
        out = run_example("two_machine_scheduling.py", capsys)
        assert "Table 1 settings" in out
        assert "lambda=2.0" in out
        assert "P(overrun" in out

    def test_distributed_sor_numerics(self, capsys):
        out = run_example("distributed_sor_numerics.py", capsys)
        assert "distributed == sequential after 200 iterations: True" in out
        assert "speedup from capacity balancing" in out

    def test_nws_forecasting(self, capsys):
        out = run_example("nws_forecasting.py", capsys)
        assert "Single-mode load" in out
        assert "Bursty 4-modal load" in out
        assert "winner:" in out

    def test_sor_production_prediction(self, capsys):
        out = run_example("sor_production_prediction.py", capsys)
        assert "stochastic prediction" in out
        assert "actual execution time" in out

    def test_batch_scheduling(self, capsys):
        out = run_example("batch_scheduling.py", capsys)
        assert "machine-a" in out and "machine-b" in out
        assert "lambda" in out

    def test_adaptive_sor(self, capsys):
        out = run_example("adaptive_sor.py", capsys)
        assert "static balanced" in out
        assert "adaptive" in out
        assert "moved" in out

    def test_chaos_prediction(self, capsys):
        out = run_example("chaos_prediction.py", capsys)
        assert "quality=fresh" in out and "quality=stale" in out
        assert "degraded stochastic prediction" in out
        assert "execution under crash" in out

    def test_serve_demo(self, capsys):
        out = run_example("serve_demo.py", capsys)
        assert "quality=fresh" in out
        assert "median batch size" in out
        assert "reason=queue_full" in out
        assert "errors=0" in out

    def test_cluster_failover(self, capsys):
        out = run_example("cluster_failover.py", capsys)
        assert "shard placement" in out
        assert "crash target" in out
        assert "errors=0" in out
        assert "never silent" in out
        assert "quality ['fresh']" in out
