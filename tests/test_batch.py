"""Tests for repro.batch — the embarrassingly parallel application."""

import numpy as np
import pytest

from repro.batch.application import BatchApplication, simulate_batch
from repro.batch.model import BatchModel, batch_bindings
from repro.batch.scheduler import run_scheduling_study
from repro.cluster.machine import Machine
from repro.core.stochastic import StochasticValue
from repro.workload.platforms import table1_platform
from repro.workload.traces import Trace


def two_machines(avail_a=1.0, avail_b=1.0):
    return [
        Machine("a", 2.5e5, availability=Trace.constant(avail_a)),
        Machine("b", 5.0e5, availability=Trace.constant(avail_b)),
    ]


APP = BatchApplication(total_units=90, elements_per_unit=2.5e6)


class TestApplication:
    def test_dedicated_unit_times_match_table1(self):
        machines = two_machines()
        assert APP.dedicated_unit_time(machines[0]) == pytest.approx(10.0)
        assert APP.dedicated_unit_time(machines[1]) == pytest.approx(5.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            BatchApplication(total_units=-1, elements_per_unit=1.0)
        with pytest.raises(ValueError):
            BatchApplication(total_units=1, elements_per_unit=0.0)


class TestSimulateBatch:
    def test_dedicated_analytic(self):
        result = simulate_batch(two_machines(), APP, [30, 60])
        # 30 units * 10 s and 60 units * 5 s: both finish at 300 s.
        np.testing.assert_allclose(result.finish_times, [300.0, 300.0])
        assert result.makespan == pytest.approx(300.0)
        assert result.imbalance == pytest.approx(0.0)

    def test_load_slows_worker(self):
        result = simulate_batch(two_machines(avail_a=0.5), APP, [30, 60])
        assert result.finish_times[0] == pytest.approx(600.0)
        assert result.makespan == pytest.approx(600.0)

    def test_idle_machine_finishes_at_start(self):
        app = BatchApplication(total_units=10, elements_per_unit=2.5e6)
        result = simulate_batch(two_machines(), app, [10, 0], start_time=50.0)
        assert result.finish_times[1] == 50.0
        assert result.makespan == pytest.approx(100.0)

    def test_imbalance(self):
        result = simulate_batch(two_machines(), APP, [60, 30])
        # a: 600 s, b: 150 s.
        assert result.imbalance == pytest.approx(450.0)

    def test_allocation_must_sum(self):
        with pytest.raises(ValueError):
            simulate_batch(two_machines(), APP, [30, 30])

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(two_machines(), APP, [100, -10])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(two_machines(), APP, [90])


class TestBatchModel:
    def test_dedicated_prediction_analytic(self):
        machines = two_machines()
        b = batch_bindings(machines, APP, [30, 60])
        pred = BatchModel(2).predict(b)
        assert pred.mean == pytest.approx(300.0)

    def test_stochastic_load_widens(self):
        machines = two_machines()
        loads = {0: StochasticValue(0.5, 0.1), 1: StochasticValue.point(1.0)}
        b = batch_bindings(machines, APP, [30, 60], loads=loads)
        pred = BatchModel(2).predict(b)
        assert pred.mean == pytest.approx(600.0)
        assert pred.spread > 0

    def test_busy_restriction(self):
        machines = two_machines()
        b = batch_bindings(machines, APP, [90, 0])
        full = BatchModel(2).predict(b)
        busy = BatchModel(2).predict(b, busy=[0])
        assert busy.mean == pytest.approx(full.mean)  # idle term is 0 anyway
        with pytest.raises(ValueError):
            BatchModel(2).predict(b, busy=[])

    def test_per_machine(self):
        machines = two_machines()
        b = batch_bindings(machines, APP, [30, 60])
        times = BatchModel(2).per_machine(b)
        assert [t.mean for t in times] == pytest.approx([300.0, 300.0])

    def test_invalid_machine_count_rejected(self):
        with pytest.raises(ValueError):
            BatchModel(0)

    def test_bindings_length_mismatch(self):
        with pytest.raises(ValueError):
            batch_bindings(two_machines(), APP, [90])


class TestSchedulingStudy:
    @pytest.fixture(scope="class")
    def studies(self):
        plat = table1_platform(duration=3000.0, rng=1)
        app = BatchApplication(total_units=120, elements_per_unit=2.5e6)
        return run_scheduling_study(plat, app, lams=(0.0, 2.0), n_rounds=10)

    def test_one_study_per_lambda(self, studies):
        assert sorted(s.lam for s in studies) == [0.0, 2.0]
        assert all(len(s.rounds) == 10 for s in studies)

    def test_risk_aversion_shifts_work_to_stable_machine(self, studies):
        by_lam = {s.lam: s for s in studies}
        share = lambda s: np.mean([r.units[0] / sum(r.units) for r in s.rounds])  # noqa: E731
        assert share(by_lam[2.0]) > share(by_lam[0.0])

    def test_risk_aversion_improves_prediction_accuracy(self, studies):
        by_lam = {s.lam: s for s in studies}

        def err(s):
            return np.mean([abs(r.realized - r.predicted.mean) / r.realized for r in s.rounds])

        assert err(by_lam[2.0]) < err(by_lam[0.0])

    def test_summary_properties(self, studies):
        s = studies[0]
        assert s.mean_makespan > 0
        assert s.p95_makespan >= s.mean_makespan
        assert s.makespan_std >= 0

    def test_invalid_rounds_rejected(self):
        plat = table1_platform(duration=1000.0, rng=2)
        with pytest.raises(ValueError):
            run_scheduling_study(plat, APP, lams=(0.0,), n_rounds=0)


class TestTable1Platform:
    def test_machine_names_and_rates(self):
        plat = table1_platform(rng=0)
        assert plat.names == ("machine-a", "machine-b")
        assert plat.machines[1].elements_per_sec == 2 * plat.machines[0].elements_per_sec

    def test_equal_production_means(self):
        # Both machines average ~12 s per 2.5e6-element unit.
        plat = table1_platform(duration=50_000.0, rng=3)
        app = BatchApplication(total_units=1, elements_per_unit=2.5e6)
        for m in plat.machines:
            eff = m.elements_per_sec * m.availability.values.mean()
            unit_time = app.elements_per_unit / eff
            assert unit_time == pytest.approx(12.0, rel=0.08), m.name

    def test_b_much_more_variable(self):
        plat = table1_platform(duration=20_000.0, rng=4)
        std_a = plat.machines[0].availability.values.std()
        std_b = plat.machines[1].availability.values.std()
        assert std_b > 3 * std_a
