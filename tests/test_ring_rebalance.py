"""Property tests for elastic ring membership changes.

The consistent-hash contract the autoscaler leans on, pinned as
hypothesis properties over shard populations and membership histories:

* **Minimal movement** — adding or removing one worker relocates at
  most ~2/N of the shard primaries (the slice the changed arc
  intercepts, doubled for slack over vnode variance), never a
  wholesale reshuffle.
* **Replica-set stability** — a shard's new owner set still comes off
  the ring, distinct, primary first.
* **Primary balance** — after any add/remove sequence, no worker holds
  more than the bounded-load election cap's worth of primaries, so a
  degenerate transition (ring collapsed to one node, then regrown) can
  never pin the keyspace to one worker.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.router import ClusterRouter

shard_counts = st.integers(min_value=20, max_value=120)
worker_counts = st.integers(min_value=2, max_value=8)
salts = st.integers(min_value=0, max_value=1000)


def make_router(n_workers: int, n_shards: int, salt: int, replication: int = 2):
    workers = [f"worker-{i}" for i in range(n_workers)]
    router = ClusterRouter(workers, replication=replication)
    shards = [f"shard-{salt}-{i}" for i in range(n_shards)]
    for s in shards:
        router.owners(s)
    return router, shards


def primaries(router: ClusterRouter, shards) -> dict:
    return {s: router.owners(s)[0] for s in shards}


class TestMinimalMovement:
    @settings(max_examples=40, deadline=None)
    @given(n_shards=shard_counts, n_workers=worker_counts, salt=salts)
    def test_add_one_worker_moves_at_most_two_over_n(self, n_shards, n_workers, salt):
        router, shards = make_router(n_workers, n_shards, salt)
        before = primaries(router, shards)
        moves = router.add_worker("worker-new")
        after = primaries(router, shards)
        moved = sum(1 for s in shards if before[s] != after[s])
        # ceil(2S/N) plus a couple of re-elections: the bounded-load cap
        # can evict a shard whose old primary sits exactly at the cap
        # after the newcomer's vnodes land, so the tight bound is flaky
        # at small N (seen at ~1-in-10k seedings).
        bound = math.ceil(2.0 * n_shards / n_workers) + 2
        assert moved <= bound, f"{moved} primaries moved, bound {bound}"
        assert moved == sum(1 for m in moves if m.primary_moved)

    @settings(max_examples=40, deadline=None)
    @given(n_shards=shard_counts, n_workers=worker_counts, salt=salts)
    def test_remove_one_worker_moves_at_most_its_share_doubled(
        self, n_shards, n_workers, salt
    ):
        router, shards = make_router(n_workers, n_shards, salt)
        before = primaries(router, shards)
        victim = f"worker-{n_workers - 1}"
        router.remove_worker(victim)
        after = primaries(router, shards)
        # Shards the victim did not own should overwhelmingly stay put;
        # allow the bounded-load cap a little re-election slack.
        moved_foreign = sum(
            1 for s in shards if before[s] != victim and before[s] != after[s]
        )
        bound = math.ceil(2.0 * n_shards / n_workers) + 2
        assert moved_foreign <= bound
        assert victim not in set(after.values())

    @settings(max_examples=40, deadline=None)
    @given(n_shards=shard_counts, n_workers=worker_counts, salt=salts)
    def test_owner_sets_stay_well_formed(self, n_shards, n_workers, salt):
        router, shards = make_router(n_workers, n_shards, salt)
        router.add_worker("worker-new")
        for s in shards:
            owners = router.owners(s)
            assert len(owners) == len(set(owners)) == min(2, n_workers + 1)
            assert owners[0] == router.primary(s)
            assert all(o in router.workers for o in owners)


class TestPrimaryBalance:
    def cap(self, n_shards: int, n_workers: int) -> int:
        """The bounded-load stickiness cap: ceil(1.5 * S / N)."""
        return max(1, math.ceil(1.5 * n_shards / n_workers))

    @settings(max_examples=40, deadline=None)
    @given(n_shards=shard_counts, n_workers=worker_counts, salt=salts)
    def test_balance_after_one_addition(self, n_shards, n_workers, salt):
        router, shards = make_router(n_workers, n_shards, salt)
        router.add_worker("worker-new")
        counts = router.primary_counts()
        assert sum(counts.values()) == n_shards
        assert max(counts.values()) <= self.cap(n_shards, n_workers + 1) + 1

    @settings(max_examples=25, deadline=None)
    @given(n_shards=shard_counts, salt=salts, data=st.data())
    def test_balance_after_membership_history(self, n_shards, salt, data):
        """A random add/remove walk never concentrates the primaries."""
        router, shards = make_router(4, n_shards, salt)
        next_idx = 4
        for _ in range(data.draw(st.integers(min_value=2, max_value=6))):
            if len(router.workers) <= 2 or data.draw(st.booleans()):
                router.add_worker(f"worker-{next_idx}")
                next_idx += 1
            else:
                router.remove_worker(
                    data.draw(st.sampled_from(sorted(router.workers)))
                )
        counts = router.primary_counts()
        assert sum(counts.values()) == n_shards
        assert max(counts.values()) <= self.cap(n_shards, len(router.workers)) + 1

    def test_recovery_from_a_collapsed_ring(self):
        """Regression: stickiness must not pin the keyspace to the one
        survivor of a degenerate transition."""
        router, shards = make_router(4, 60, salt=0)
        for name in ("worker-1", "worker-2", "worker-3"):
            router.remove_worker(name)
        assert router.primary_counts() == {"worker-0": 60}  # all pinned, by necessity
        for name in ("worker-4", "worker-5", "worker-6"):
            router.add_worker(name)
        counts = router.primary_counts()
        # The old survivor holds at most the bounded-load cap, not all 60.
        assert counts["worker-0"] <= self.cap(60, 4) + 1
        assert min(counts.values()) > 0  # every newcomer took real load

    def test_replication_regrows_after_scale_up(self):
        router, shards = make_router(2, 30, salt=1, replication=3)
        assert router.replication == 2  # capped by fleet size
        router.add_worker("worker-2")
        assert router.replication == 3
        assert all(len(router.owners(s)) == 3 for s in shards)
