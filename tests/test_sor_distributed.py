"""Tests for repro.sor.distributed — numerical equivalence + timing program."""

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.sor.decomposition import ELEMENT_BYTES, equal_strips, weighted_strips
from repro.sor.distributed import build_sor_program, distributed_solve, simulate_sor
from repro.sor.grid import SORGrid
from repro.sor.kernel import sor_iteration
from repro.workload.traces import Trace


def sequential_reference(grid, iterations):
    u = grid.initial_field()
    source = grid.source if np.any(grid.source) else None
    for _ in range(iterations):
        sor_iteration(u, grid.omega, source)
    return u


class TestNumericalEquivalence:
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4, 7])
    def test_bit_identical_to_sequential(self, n_procs):
        g = SORGrid.laplace_problem(25)
        ref = sequential_reference(g, 30)
        dist = distributed_solve(g, n_procs=n_procs, iterations=30)
        np.testing.assert_array_equal(dist, ref)

    def test_bit_identical_with_source_term(self):
        g = SORGrid.poisson_problem(21, lambda x, y: np.exp(x * y))
        ref = sequential_reference(g, 25)
        dist = distributed_solve(g, n_procs=3, iterations=25)
        np.testing.assert_array_equal(dist, ref)

    def test_bit_identical_with_weighted_strips(self):
        g = SORGrid.laplace_problem(30)
        ref = sequential_reference(g, 20)
        dec = weighted_strips(30, [1.0, 2.0, 3.0])
        dist = distributed_solve(g, dec, iterations=20)
        np.testing.assert_array_equal(dist, ref)

    def test_hot_edge_boundary_preserved(self):
        g = SORGrid.hot_edge_problem(17)
        dist = distributed_solve(g, n_procs=2, iterations=10)
        np.testing.assert_array_equal(dist[0, :], g.boundary[0, :])

    def test_requires_decomposition_or_nprocs(self):
        g = SORGrid.laplace_problem(9)
        with pytest.raises(ValueError):
            distributed_solve(g)

    def test_mismatched_decomposition_rejected(self):
        g = SORGrid.laplace_problem(9)
        with pytest.raises(ValueError):
            distributed_solve(g, equal_strips(11, 2))

    def test_zero_iterations_rejected(self):
        g = SORGrid.laplace_problem(9)
        with pytest.raises(ValueError):
            distributed_solve(g, n_procs=2, iterations=0)


class TestProgramStructure:
    def test_four_phases_per_iteration(self):
        dec = equal_strips(102, 4)
        prog = build_sor_program(102, dec, 10)
        names = [p.name for p in prog.phases]
        assert names == ["red_compute", "red_comm", "black_compute", "black_comm"]
        assert prog.iterations == 10

    def test_compute_work_is_half_strip(self):
        dec = equal_strips(102, 4)
        prog = build_sor_program(102, dec, 1)
        red = prog.phases[0]
        assert red.work[0] == dec.elements(0) / 2.0

    def test_comm_messages_neighbours_only(self):
        dec = equal_strips(102, 4)
        prog = build_sor_program(102, dec, 1)
        comm = prog.phases[1]
        pairs = {(m.src, m.dst) for m in comm.messages}
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}

    def test_message_bytes_one_ghost_row(self):
        dec = equal_strips(102, 4)
        prog = build_sor_program(102, dec, 1)
        for m in prog.phases[1].messages:
            assert m.nbytes == 100 * ELEMENT_BYTES

    def test_single_proc_no_messages(self):
        dec = equal_strips(10, 1)
        prog = build_sor_program(10, dec, 1)
        assert all(len(p.messages) == 0 for p in prog.phases)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_sor_program(100, equal_strips(102, 4), 1)


class TestSimulateSor:
    def test_dedicated_time_scales_with_problem_size(self):
        machines = [Machine(f"m{i}", 1e5) for i in range(4)]
        net = Network()
        t1 = simulate_sor(machines, net, 500, 5).elapsed
        t2 = simulate_sor(machines, net, 1000, 5).elapsed
        assert t2 / t1 == pytest.approx(4.0, rel=0.1)

    def test_dedicated_analytic_time(self):
        # One machine, no comm: time = iterations * elements / rate.
        machines = [Machine("m", 1e5)]
        result = simulate_sor(machines, Network(), 102, 10)
        assert result.elapsed == pytest.approx(10 * 100 * 100 / 1e5, rel=0.01)

    def test_slow_availability_slows_run(self):
        fast = [Machine(f"m{i}", 1e5) for i in range(2)]
        slow = [m.with_availability(Trace.constant(0.5)) for m in fast]
        net = Network()
        t_fast = simulate_sor(fast, net, 200, 5).elapsed
        t_slow = simulate_sor(slow, net, 200, 5).elapsed
        assert t_slow == pytest.approx(2 * t_fast, rel=0.05)

    def test_memory_limit_enforced(self):
        machines = [Machine("tiny", 1e5, memory_elements=10.0)]
        with pytest.raises(ValueError, match="does not fit"):
            simulate_sor(machines, Network(), 100, 1)

    def test_weighted_decomposition_balances_heterogeneous(self):
        machines = [Machine("slow", 1e5), Machine("fast", 4e5)]
        net = Network()
        n = 402
        equal = simulate_sor(machines, net, n, 5)
        weighted = simulate_sor(
            machines, net, n, 5, decomposition=weighted_strips(n, [1.0, 4.0])
        )
        assert weighted.elapsed < equal.elapsed
        assert weighted.max_skew < equal.max_skew
