"""Tests for repro.core.arithmetic — the paper's Table 2 rules."""

import math

import numpy as np
import pytest

from repro.core.arithmetic import (
    Relatedness,
    ReciprocalRule,
    add,
    divide,
    linear_combination,
    multiply,
    product_stochastic,
    reciprocal,
    scale,
    shift,
    subtract,
    sum_stochastic,
)
from repro.core.stochastic import StochasticValue as SV


class TestPointValueRows:
    """Table 2 row: point value with stochastic value."""

    def test_shift(self):
        out = shift(SV(8.0, 2.0), 3.0)
        assert (out.mean, out.spread) == (11.0, 2.0)

    def test_scale(self):
        out = scale(SV(8.0, 2.0), 3.0)
        assert (out.mean, out.spread) == (24.0, 6.0)

    def test_scale_negative_keeps_spread_positive(self):
        out = scale(SV(8.0, 2.0), -3.0)
        assert (out.mean, out.spread) == (-24.0, 6.0)

    def test_add_dispatches_to_shift_for_point(self):
        out = add(SV(8.0, 2.0), 5.0)
        assert (out.mean, out.spread) == (13.0, 2.0)

    def test_add_point_first(self):
        out = add(5.0, SV(8.0, 2.0))
        assert (out.mean, out.spread) == (13.0, 2.0)

    def test_multiply_by_point_exact(self):
        out = multiply(SV(8.0, 2.0), SV.point(0.5), Relatedness.RELATED)
        assert (out.mean, out.spread) == (4.0, 1.0)


class TestAddition:
    """Table 2 rows: addition of two stochastic values."""

    def test_related_sums_spreads(self):
        out = add(SV(8.0, 2.0), SV(5.0, 1.5), Relatedness.RELATED)
        assert out.mean == 13.0
        assert out.spread == pytest.approx(3.5)

    def test_unrelated_rss(self):
        out = add(SV(8.0, 3.0), SV(5.0, 4.0), Relatedness.UNRELATED)
        assert out.mean == 13.0
        assert out.spread == pytest.approx(5.0)

    def test_related_at_least_unrelated(self):
        a, b = SV(1.0, 2.0), SV(1.0, 3.0)
        rel = add(a, b, Relatedness.RELATED)
        unrel = add(a, b, Relatedness.UNRELATED)
        assert rel.spread >= unrel.spread

    def test_subtract_means(self):
        out = subtract(SV(8.0, 2.0), SV(5.0, 1.5), Relatedness.RELATED)
        assert out.mean == 3.0
        assert out.spread == pytest.approx(3.5)

    def test_subtract_unrelated(self):
        out = subtract(SV(8.0, 3.0), SV(5.0, 4.0))
        assert out.spread == pytest.approx(5.0)

    def test_default_is_unrelated(self):
        out = add(SV(0.0, 3.0), SV(0.0, 4.0))
        assert out.spread == pytest.approx(5.0)


class TestMultiplication:
    """Table 2 rows: multiplication of two stochastic values."""

    def test_related_formula(self):
        # (Xi +/- ai)(Xj +/- aj) = XiXj +/- (aiXj + ajXi + aiaj)
        out = multiply(SV(8.0, 2.0), SV(5.0, 1.5), Relatedness.RELATED)
        assert out.mean == 40.0
        assert out.spread == pytest.approx(2.0 * 5.0 + 1.5 * 8.0 + 2.0 * 1.5)

    def test_related_formula_negative_mean_abs_terms(self):
        out = multiply(SV(-8.0, 2.0), SV(5.0, 1.5), Relatedness.RELATED)
        assert out.mean == -40.0
        assert out.spread == pytest.approx(10.0 + 12.0 + 3.0)

    def test_unrelated_quadrature_of_relative_errors(self):
        x, y = SV(8.0, 2.0), SV(5.0, 1.5)
        out = multiply(x, y, Relatedness.UNRELATED)
        rel = math.hypot(2.0 / 8.0, 1.5 / 5.0)
        assert out.mean == 40.0
        assert out.spread == pytest.approx(40.0 * rel)

    def test_zero_mean_convention(self):
        # Paper: "In the case that either Xi or Xj is equal to zero, we
        # define their product to be zero."
        out = multiply(SV(0.0, 2.0), SV(5.0, 1.0), Relatedness.UNRELATED)
        assert out.mean == 0.0 and out.is_point

    def test_zero_mean_related_still_defined(self):
        out = multiply(SV(0.0, 2.0), SV(5.0, 1.0), Relatedness.RELATED)
        assert out.mean == 0.0
        assert out.spread == pytest.approx(2.0 * 5.0 + 1.0 * 0.0 + 2.0 * 1.0)

    def test_commutative(self):
        a, b = SV(3.0, 0.5), SV(7.0, 1.0)
        for rel in Relatedness:
            ab = multiply(a, b, rel)
            ba = multiply(b, a, rel)
            assert ab.mean == pytest.approx(ba.mean)
            assert ab.spread == pytest.approx(ba.spread)


class TestReciprocalAndDivision:
    def test_first_order_reciprocal(self):
        out = reciprocal(SV(4.0, 0.8))
        assert out.mean == pytest.approx(0.25)
        assert out.spread == pytest.approx(0.8 / 16.0)

    def test_paper_literal_reciprocal(self):
        out = reciprocal(SV(4.0, 0.8), ReciprocalRule.PAPER_LITERAL)
        assert out.mean == pytest.approx(0.25)
        assert out.spread == pytest.approx(1.25)

    def test_point_reciprocal(self):
        out = reciprocal(SV.point(4.0))
        assert out.is_point and out.mean == 0.25

    def test_zero_mean_reciprocal_rejected(self):
        with pytest.raises(ZeroDivisionError):
            reciprocal(SV(0.0, 1.0))

    def test_divide_by_point(self):
        out = divide(SV(10.0, 2.0), 4.0)
        assert (out.mean, out.spread) == (2.5, 0.5)

    def test_divide_by_zero_point_rejected(self):
        with pytest.raises(ZeroDivisionError):
            divide(SV(1.0, 0.1), 0.0)

    def test_divide_preserves_relative_error_structure(self):
        # Production computation: dedicated time / load.
        t = SV.point(10.0)
        load = SV(0.48, 0.05)
        out = divide(t, load)
        assert out.mean == pytest.approx(10.0 / 0.48)
        # Relative error of the result equals relative error of the load
        # (first-order), since t is a point value.
        assert out.spread / out.mean == pytest.approx(0.05 / 0.48, rel=1e-12)

    def test_division_first_order_matches_monte_carlo(self):
        rng = np.random.default_rng(5)
        x, y = SV(8.0, 2.0), SV(5.0, 1.0)
        samples = x.sample(200_000, rng) / y.sample(200_000, rng)
        out = divide(x, y, Relatedness.UNRELATED)
        assert out.mean == pytest.approx(samples.mean(), rel=0.02)
        assert out.spread == pytest.approx(2 * samples.std(), rel=0.12)


class TestAggregates:
    def test_sum_related(self):
        out = sum_stochastic([SV(1.0, 0.1), SV(2.0, 0.2), SV(3.0, 0.3)], Relatedness.RELATED)
        assert out.mean == pytest.approx(6.0)
        assert out.spread == pytest.approx(0.6)

    def test_sum_unrelated(self):
        out = sum_stochastic([SV(0.0, 3.0), SV(0.0, 4.0)], Relatedness.UNRELATED)
        assert out.spread == pytest.approx(5.0)

    def test_empty_sum_is_zero_point(self):
        out = sum_stochastic([])
        assert out.is_point and out.mean == 0.0

    def test_sum_accepts_plain_numbers(self):
        out = sum_stochastic([1.0, SV(2.0, 0.5), 3])
        assert out.mean == pytest.approx(6.0)
        assert out.spread == pytest.approx(0.5)

    def test_product(self):
        out = product_stochastic([SV.point(2.0), SV.point(3.0), SV.point(4.0)])
        assert out.mean == pytest.approx(24.0)

    def test_empty_product_is_one(self):
        assert product_stochastic([]).mean == 1.0

    def test_linear_combination(self):
        out = linear_combination([2.0, -1.0], [SV(3.0, 0.5), SV(1.0, 0.5)], Relatedness.RELATED)
        assert out.mean == pytest.approx(5.0)
        assert out.spread == pytest.approx(1.5)

    def test_linear_combination_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_combination([1.0], [SV(1.0, 0.1), SV(2.0, 0.1)])


class TestNormalClosure:
    """Linear rules must match the exact distribution of combined normals."""

    def test_related_add_matches_comonotonic_sampling(self):
        rng = np.random.default_rng(7)
        x, y = SV(8.0, 2.0), SV(5.0, 1.5)
        z = rng.standard_normal(300_000)
        samples = (x.mean + x.std * z) + (y.mean + y.std * z)
        out = add(x, y, Relatedness.RELATED)
        assert out.mean == pytest.approx(samples.mean(), abs=0.02)
        assert out.spread == pytest.approx(2 * samples.std(), rel=0.01)

    def test_unrelated_add_matches_independent_sampling(self):
        rng = np.random.default_rng(8)
        x, y = SV(8.0, 2.0), SV(5.0, 1.5)
        samples = x.sample(300_000, rng) + y.sample(300_000, rng)
        out = add(x, y, Relatedness.UNRELATED)
        assert out.mean == pytest.approx(samples.mean(), abs=0.02)
        assert out.spread == pytest.approx(2 * samples.std(), rel=0.01)

    def test_unrelated_multiply_close_to_independent_sampling(self):
        rng = np.random.default_rng(9)
        x, y = SV(8.0, 0.8), SV(5.0, 0.5)  # low variance: first-order regime
        samples = x.sample(300_000, rng) * y.sample(300_000, rng)
        out = multiply(x, y, Relatedness.UNRELATED)
        assert out.mean == pytest.approx(samples.mean(), rel=0.01)
        assert out.spread == pytest.approx(2 * samples.std(), rel=0.02)
