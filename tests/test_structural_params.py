"""Tests for repro.structural.parameters — bindings and resolve times."""

import pytest

from repro.core.stochastic import StochasticValue
from repro.structural.parameters import Bindings, ResolveTime, param_name


class TestParamName:
    def test_plain(self):
        assert param_name("bw_avail") == "bw_avail"

    def test_indexed(self):
        assert param_name("load", 3) == "load[3]"

    def test_multi_indexed(self):
        assert param_name("dedbw", 0, 2) == "dedbw[0,2]"


class TestBindings:
    def test_bind_and_resolve(self):
        b = Bindings({"x": 2.0})
        assert b.resolve("x") == StochasticValue.point(2.0)

    def test_stochastic_passthrough(self):
        sv = StochasticValue(0.48, 0.05)
        b = Bindings({"load": sv})
        assert b.resolve("load") is sv

    def test_unbound_error_lists_known(self):
        b = Bindings({"alpha": 1.0})
        with pytest.raises(KeyError, match="alpha"):
            b.resolve("beta")

    def test_contains_and_len(self):
        b = Bindings({"x": 1.0, "y": 2.0})
        assert "x" in b and "z" not in b
        assert len(b) == 2

    def test_names_sorted(self):
        b = Bindings({"b": 1.0, "a": 2.0})
        assert b.names() == ["a", "b"]

    def test_resolve_time_tracking(self):
        b = Bindings()
        b.bind("size_elt", 8.0)
        b.bind_runtime("load[0]", StochasticValue(0.5, 0.1))
        assert b.resolve_time("size_elt") is ResolveTime.COMPILE_TIME
        assert b.resolve_time("load[0]") is ResolveTime.RUN_TIME
        assert b.runtime_names() == ["load[0]"]

    def test_rebinding_overwrites(self):
        b = Bindings({"x": 1.0})
        b.bind("x", 2.0)
        assert b.resolve("x").mean == 2.0

    def test_copy_is_independent(self):
        b = Bindings({"x": 1.0})
        c = b.copy()
        c.bind("x", 5.0)
        assert b.resolve("x").mean == 1.0

    def test_overlaid_preserves_original(self):
        b = Bindings()
        b.bind_runtime("load", 1.0)
        c = b.overlaid({"load": StochasticValue(0.5, 0.1)})
        assert b.resolve("load").mean == 1.0
        assert c.resolve("load").mean == 0.5
        # Run-time classification survives the overlay.
        assert c.resolve_time("load") is ResolveTime.RUN_TIME

    def test_overlaid_new_names_are_runtime(self):
        b = Bindings()
        c = b.overlaid({"fresh": 1.0})
        assert c.resolve_time("fresh") is ResolveTime.RUN_TIME

    def test_chaining(self):
        b = Bindings().bind("a", 1.0).bind("b", 2.0)
        assert len(b) == 2
