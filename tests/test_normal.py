"""Tests for repro.core.normal — the NormalDistribution object."""

import numpy as np
import pytest

from repro.core.normal import TWO_SIGMA_COVERAGE, NormalDistribution


class TestConstruction:
    def test_basic(self):
        d = NormalDistribution(2.0, 3.0)
        assert d.mean == 2.0 and d.std == 3.0 and d.variance == 9.0

    def test_zero_std_point_mass(self):
        d = NormalDistribution(1.0, 0.0)
        assert d.cdf(0.9) == 0.0 and d.cdf(1.1) == 1.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, -1.0)

    def test_nonfinite_mean_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(float("inf"), 1.0)


class TestQueries:
    def test_pdf_integrates_to_one(self):
        d = NormalDistribution(1.0, 2.0)
        xs = np.linspace(-15, 17, 20_001)
        integral = np.trapezoid(d.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_point_mass_pdf_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, 0.0).pdf(0.0)

    def test_quantile_roundtrip(self):
        d = NormalDistribution(-1.0, 0.7)
        for p in (0.01, 0.3, 0.5, 0.9, 0.99):
            assert d.cdf(d.quantile(p)) == pytest.approx(p, abs=1e-7)

    def test_point_mass_quantile(self):
        d = NormalDistribution(4.0, 0.0)
        assert d.quantile(0.3) == 4.0
        with pytest.raises(ValueError):
            d.quantile(0.0)

    def test_two_sigma_interval(self):
        d = NormalDistribution(10.0, 1.5)
        assert d.interval() == (7.0, 13.0)

    def test_interval_mass_matches_constant(self):
        d = NormalDistribution(0.0, 1.0)
        lo, hi = d.interval(2.0)
        assert d.coverage(lo, hi) == pytest.approx(TWO_SIGMA_COVERAGE, abs=1e-9)

    def test_coverage_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, 1.0).coverage(1.0, 0.0)

    def test_negative_k_sigma_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, 1.0).interval(-1.0)


class TestSampling:
    def test_statistics(self):
        d = NormalDistribution(3.0, 0.5)
        s = d.sample(100_000, rng=0)
        assert s.mean() == pytest.approx(3.0, abs=0.01)
        assert s.std() == pytest.approx(0.5, abs=0.01)

    def test_point_mass_sampling(self):
        s = NormalDistribution(2.0, 0.0).sample(5, rng=0)
        assert np.all(s == 2.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, 1.0).sample(-1)

    def test_deterministic_with_seed(self):
        d = NormalDistribution(0.0, 1.0)
        np.testing.assert_array_equal(d.sample(10, rng=5), d.sample(10, rng=5))
