"""Repo-level consistency: docs, benches, and public API stay in sync."""

import re
from pathlib import Path

import pytest

import repro
import repro.batch
import repro.calib
import repro.core
import repro.distributions
import repro.faults
import repro.nws
import repro.obs
import repro.scheduling
import repro.serving
import repro.sor
import repro.structural
import repro.workload

ROOT = Path(__file__).parent.parent


class TestDesignDocument:
    def test_every_bench_in_design_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert referenced, "DESIGN.md must reference bench files"
        for name in referenced:
            assert (ROOT / "benchmarks" / name).exists(), f"missing {name}"

    def test_every_bench_file_documented(self):
        design = (ROOT / "DESIGN.md").read_text()
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        corpus = design + experiments
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in corpus, f"{path.name} not documented in DESIGN/EXPERIMENTS"

    def test_paper_check_recorded(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "Paper-text check" in design


class TestReadme:
    def test_examples_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README examples table"

    def test_no_stale_example_references(self):
        readme = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (ROOT / "examples" / name).exists(), f"README references missing {name}"


class TestPublicApi:
    @pytest.mark.parametrize(
        "module",
        [
            repro,
            repro.batch,
            repro.calib,
            repro.core,
            repro.distributions,
            repro.faults,
            repro.nws,
            repro.obs,
            repro.scheduling,
            repro.serving,
            repro.sor,
            repro.structural,
            repro.workload,
        ],
    )
    def test_all_exports_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} in __all__ but missing"

    @pytest.mark.parametrize(
        "module",
        [
            repro.batch,
            repro.calib,
            repro.core,
            repro.distributions,
            repro.faults,
            repro.nws,
            repro.obs,
            repro.scheduling,
            repro.serving,
            repro.sor,
            repro.structural,
            repro.workload,
        ],
    )
    def test_public_objects_documented(self, module):
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestExamplesHaveMains:
    def test_every_example_defines_main(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert "def main()" in text, f"{path.name} must define main()"
            assert '__name__ == "__main__"' in text, f"{path.name} must be runnable"
