"""Tests for repro.structural.generic — model compilation from programs."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.cluster.simulator import ClusterSimulator, IterativeProgram, Message, Phase
from repro.core.stochastic import StochasticValue as SV
from repro.sor.decomposition import equal_strips
from repro.sor.distributed import build_sor_program
from repro.structural.generic import model_from_program, phase_component, program_bindings
from repro.structural.sor_model import SORModel, bindings_for_platform


def platform():
    machines = [Machine(f"m{i}", 1e5) for i in range(4)]
    network = Network(SharedEthernet(dedicated_bytes_per_sec=1.25e6, latency=1e-3))
    return machines, network


class TestPhaseComponent:
    def test_compute_only(self):
        phase = Phase("c", (100.0, 0.0))
        comp = phase_component(phase, 0)
        b = program_bindings([Machine("a", 10.0), Machine("b", 10.0)], Network(),
                             IterativeProgram("p", (phase,), 1))
        assert comp.evaluate(b).mean == pytest.approx(10.0)

    def test_idle_processor_zero(self):
        phase = Phase("c", (100.0, 0.0))
        comp = phase_component(phase, 1)
        b = program_bindings([Machine("a", 10.0), Machine("b", 10.0)], Network(),
                             IterativeProgram("p", (phase,), 1))
        assert comp.evaluate(b).mean == 0.0

    def test_messages_charged_to_both_endpoints(self):
        phase = Phase("x", (0.0, 0.0), (Message(0, 1, 1000.0),))
        prog = IterativeProgram("p", (phase,), 1)
        machines = [Machine("a", 10.0), Machine("b", 10.0)]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0))
        b = program_bindings(machines, net, prog)
        for p in (0, 1):
            assert phase_component(phase, p).evaluate(b).mean == pytest.approx(1.0)


class TestEquivalenceWithSORModel:
    @pytest.mark.parametrize("latency", [False, True])
    def test_compiled_model_matches_handwritten(self, latency):
        machines, network = platform()
        n, its = 802, 15
        dec = equal_strips(n, 4)
        program = build_sor_program(n, dec, its)

        hand = SORModel(n_procs=4, iterations=its, include_latency=latency)
        hand_b = bindings_for_platform(machines, network, dec, bw_avail=0.7)
        compiled = model_from_program(program, include_latency=latency)
        comp_b = program_bindings(machines, network, program, bw_avail=0.7)

        assert compiled.evaluate(comp_b).mean == pytest.approx(
            hand.predict(hand_b).mean, rel=1e-12
        )

    def test_equivalence_with_stochastic_loads(self):
        machines, network = platform()
        dec = equal_strips(602, 4)
        program = build_sor_program(602, dec, 10)
        loads = {i: SV(0.5, 0.1) for i in range(4)}

        hand = SORModel(4, 10).predict(
            bindings_for_platform(machines, network, dec, loads=loads)
        )
        compiled = model_from_program(program).evaluate(
            program_bindings(machines, network, program, loads=loads)
        )
        assert compiled.mean == pytest.approx(hand.mean, rel=1e-12)
        assert compiled.spread == pytest.approx(hand.spread, rel=1e-12)


class TestArbitraryPrograms:
    def test_pipeline_program_prediction_matches_simulation(self):
        # A 3-stage pipeline-ish program the hand-written models don't
        # cover: stage work descends, ring messages forward only.
        machines = [Machine(f"m{i}", 1e4) for i in range(3)]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1e6, latency=0.0))
        program = IterativeProgram(
            "pipeline",
            (
                Phase("work", (3000.0, 2000.0, 1000.0)),
                Phase("fwd", (0.0, 0.0, 0.0), (Message(0, 1, 8000.0), Message(1, 2, 8000.0))),
            ),
            iterations=8,
        )
        b = program_bindings(machines, net, program)
        predicted = model_from_program(program).evaluate(b)
        actual = ClusterSimulator(machines, net).run(program)
        # The Max-per-phase model slightly over-counts the serialized
        # middle processor; it must still land within a few percent.
        assert predicted.mean == pytest.approx(actual.elapsed, rel=0.05)

    def test_machine_count_validated(self):
        program = IterativeProgram("p", (Phase("c", (1.0, 1.0)),), 1)
        with pytest.raises(ValueError):
            program_bindings([Machine("a", 1.0)], Network(), program)

    def test_dedbw_bound_once_per_pair(self):
        machines, network = platform()
        program = build_sor_program(402, equal_strips(402, 4), 2)
        b = program_bindings(machines, network, program)
        dedbw_names = [n for n in b.names() if n.startswith("dedbw")]
        assert dedbw_names == ["dedbw[0,1]", "dedbw[1,2]", "dedbw[2,3]"]
