"""Integration tests for calibration-aware serving.

The contract under test (see ``docs/calibration.md``):

* with ``ServerConfig(calibration=CalibrationConfig())`` every OK
  answer carries a :class:`DistributionInfo` block whose moments agree
  with the response's ``value`` summary;
* with ``calibration=None`` responses are byte-identical to previous
  releases (the loop draws outcomes from a *spawned* RNG child, so
  enabling it never shifts the serving draw sequence either);
* an active recalibration scale widens ``value``/``p95``/the grid about
  the mean and tags the block — never silently;
* deferred scoring queues answers per model and flushes at
  ``flush_every`` (and at ``summary()``), emitting ``calib.score``
  spans;
* the cluster merges worker scorers and tags events with their worker.
"""

import json

import numpy as np
import pytest

from repro.calib import (
    CalibrationConfig,
    CalibrationLoop,
    DistributionInfo,
    grid_levels,
)
from repro.core.stochastic import StochasticValue
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.obs import Tracer
from repro.obs.tracer import STAGE_CALIB
from repro.serving import (
    ClosedLoop,
    ClusterConfig,
    LoadDriver,
    ModelSpec,
    PredictRequest,
    PredictionServer,
    ServerConfig,
    demo_cluster,
)
from repro.structural.expr import Param
from repro.structural.parameters import Bindings
from repro.workload.traces import Trace


def _request(i=0, client="c0", model="m", submitted=60.0, **kw):
    return PredictRequest(
        request_id=i, client_id=client, model=model, submitted=submitted, **kw
    )


def calib_server(calibration=None, *, config_kw=None, tracer=None):
    """The one-model tiny server, optionally with a calibration loop."""
    nws = NetworkWeatherService(
        degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.4))
    )
    nws.register("cpu:a", Trace.constant(0.5))
    nws.advance_to(60.0)
    cfg = ServerConfig(calibration=calibration, **(config_kw or {}))
    server = PredictionServer(nws, config=cfg, rng=3, tracer=tracer)
    bindings = Bindings({"scale": 10.0})
    bindings.bind_runtime("load", StochasticValue(0.5, 0.1))
    server.register_model(
        ModelSpec(
            name="m",
            expression=Param("scale") * Param("load"),
            bindings=bindings,
            resources={"load": "cpu:a"},
        )
    )
    return server


def drive(server, n=6, submitted=60.0, t_done=61.0):
    for i in range(n):
        assert server.submit(_request(i, client=f"c{i}", submitted=submitted)) is None
    return server.step(t_done)


class TestDistributionBlocks:
    def test_every_ok_answer_carries_a_distribution(self):
        server = calib_server(CalibrationConfig())
        out = drive(server)
        assert len(out) == 6
        for r in out:
            d = r.distribution
            assert isinstance(d, DistributionInfo)
            assert d.count == server.config.n_samples
            assert d.levels == grid_levels(server.config.calibration.grid)
            assert len(d.quantiles) == len(d.levels)
            # The block's moments ARE the response's value summary.
            assert d.mean == pytest.approx(r.value.mean, rel=1e-12)
            assert d.spread == pytest.approx(r.value.spread, rel=1e-12)
            assert not d.recalibrated and d.scale == 1.0
            assert d.sketch is not None and d.sketch.count == d.count
            assert d.modes == ()

    def test_off_means_no_block(self):
        (r,) = drive(calib_server(None), n=1)
        assert r.distribution is None

    def test_keep_sketch_false_drops_only_the_sketch(self):
        (r,) = drive(calib_server(CalibrationConfig(keep_sketch=False)), n=1)
        assert r.distribution is not None
        assert r.distribution.sketch is None
        assert len(r.distribution.quantiles) >= 2

    def test_mixture_modes_when_requested(self):
        (r,) = drive(calib_server(CalibrationConfig(mixture_components=2)), n=1)
        modes = r.distribution.modes
        assert len(modes) == 2
        assert sum(m.weight for m in modes) == pytest.approx(1.0)
        assert all(m.std >= 0.0 for m in modes)

    def test_quantile_grid_brackets_the_mean(self):
        (r,) = drive(calib_server(CalibrationConfig()), n=1)
        d = r.distribution
        qs = np.asarray(d.quantiles)
        assert np.all(np.diff(qs) >= 0.0)
        assert qs[0] <= d.mean <= qs[-1]
        # The grid's median should sit near the MC cloud's median.
        assert d.quantile(0.5) == pytest.approx(d.mean, rel=0.1)


class TestBitIdentity:
    def test_calibration_on_leaves_answers_bit_identical(self):
        """The loop's RNG child is spawned, not drawn: enabling
        calibration (unscaled) must not move a single served float."""
        off = drive(calib_server(None))
        on = drive(calib_server(CalibrationConfig()))
        for a, b in zip(off, on):
            assert a.value.mean == b.value.mean
            assert a.value.spread == b.value.spread
            assert a.p95 == b.p95
            assert (a.quality, a.staleness, a.latency) == (
                b.quality,
                b.staleness,
                b.latency,
            )

    def test_initial_scale_widens_and_tags(self):
        off = drive(calib_server(None))
        on = drive(
            calib_server(
                CalibrationConfig(initial_scale=2.0, recalibrate=False)
            )
        )
        for a, b in zip(off, on):
            assert b.value.mean == a.value.mean
            assert b.value.spread == a.value.spread * 2.0
            assert b.p95 == a.value.mean + (a.p95 - a.value.mean) * 2.0
            d = b.distribution
            assert d.recalibrated and d.scale == 2.0
            assert d.std == pytest.approx(a.value.spread, rel=1e-12)  # 2 * raw std
            # The sketch stays raw evidence: its median is unscaled.
            med_claim = d.quantile(0.5)
            med_raw = d.sketch.quantile(0.5)
            assert abs(med_claim - d.mean) == pytest.approx(
                2.0 * abs(med_raw - d.mean), rel=0.2
            )

    def test_seeded_summary_is_reproducible(self):
        def run():
            server = calib_server(CalibrationConfig(truth_spread_scale=1.5))
            drive(server, n=12)
            return server.calibration_summary()

        assert json.dumps(run(), sort_keys=True) == json.dumps(run(), sort_keys=True)


class TestDeferredScoring:
    def test_answers_queue_until_flush(self):
        server = calib_server(CalibrationConfig())  # flush_every=256
        drive(server, n=8)
        assert server.calib.pending() == 8
        assert server.calib.pending("m") == 8
        assert server.calib.scorer.n == 0
        summary = server.calibration_summary()
        assert server.calib.pending() == 0
        assert summary["scores"]["models"]["m"]["n"] == 8
        assert sum(c["n"] for c in summary["scores"]["cohorts"].values()) == 8

    def test_flush_every_triggers_automatically(self):
        server = calib_server(CalibrationConfig(flush_every=4))
        drive(server, n=4)
        assert server.calib.pending() == 0
        assert server.calib.scorer.n == 4

    def test_summary_shape(self):
        server = calib_server(CalibrationConfig(truth_spread_scale=1.5))
        drive(server, n=4)
        doc = server.calibration_summary()
        assert doc["enabled"] is True
        assert doc["truth_spread_scale"] == 1.5
        model = doc["scores"]["models"]["m"]
        assert set(model) >= {"n", "coverage", "rolling_coverage", "crps", "pit"}
        assert set(doc["recalibration"]) == {"scales", "flagged", "events"}
        json.dumps(doc)  # JSON-serialisable as-is

    def test_off_summary_is_none(self):
        assert calib_server(None).calibration_summary() is None

    def test_calib_score_spans_emitted_on_flush(self):
        tr = Tracer()
        server = calib_server(CalibrationConfig(), tracer=tr)
        drive(server, n=5)
        server.calibration_summary()
        spans = [s for s in tr.spans if s.name == "calib.score"]
        assert len(spans) == 1
        assert spans[0].stage == STAGE_CALIB
        assert spans[0].attrs["model"] == "m"
        assert spans[0].attrs["batch_size"] == 5
        assert 0 <= spans[0].attrs["covered"] <= 5

    def test_loop_scale_without_recalibrator_is_initial_scale(self):
        loop = CalibrationLoop(
            CalibrationConfig(recalibrate=False, initial_scale=1.5),
            np.random.default_rng(0),
        )
        assert loop.scale("anything") == 1.5

    def test_scoring_failure_never_breaks_serving(self):
        """An unregistered truth model fails the flush, not the serve."""
        server = calib_server(CalibrationConfig(flush_every=2))
        server.calib._truth.clear()  # simulate a wedged truth registry
        out = drive(server, n=4)
        assert all(r.ok and r.distribution is not None for r in out)
        assert server.metrics.counter("calib_errors_total").value >= 1.0


class TestClusterCalibration:
    @pytest.fixture(scope="class")
    def driven(self):
        cluster, _, _ = demo_cluster(
            duration=600.0,
            config=ClusterConfig(
                n_workers=2,
                worker=ServerConfig(
                    calibration=CalibrationConfig(truth_spread_scale=1.5)
                ),
            ),
            rng=5,
        )
        driver = LoadDriver(
            cluster, cluster.models, ClosedLoop(clients=8), max_requests=120, rng=5
        )
        return cluster, driver.run()

    def test_merged_summary_covers_every_answer(self, driven):
        cluster, report = driven
        assert report.errors == 0
        doc = cluster.calibration_summary()
        assert doc is not None
        assert doc["truth_spread_scale"] == 1.5
        assert doc["scores"]["n"] == report.ok
        per_worker = sum(
            w.calib.scorer.n for w in cluster.workers.values() if w.calib is not None
        )
        assert per_worker == report.ok

    def test_events_are_worker_tagged(self, driven):
        cluster, _ = driven
        doc = cluster.calibration_summary()
        for event in doc["recalibration"]["events"]:
            assert event["worker"] in cluster.workers
        json.dumps(doc)

    def test_cluster_responses_carry_distributions(self, driven):
        _, report = driven
        assert all(r.distribution is not None for r in report.responses if r.ok)

    def test_off_cluster_summary_is_none(self):
        cluster, _, _ = demo_cluster(
            duration=300.0, config=ClusterConfig(n_workers=2), rng=5
        )
        assert cluster.calibration_summary() is None
