"""Shared-cache contention: the ForecastCache double-refresh fix.

When two cluster workers hold replicas of one shard, both consult the
same NWS resources.  Without coordination each worker's ForecastCache
runs the full qualified query per refresh interval — every forecast is
computed once *per cache* instead of once per cluster.  The
:class:`~repro.serving.forecasts.SharedRefreshLedger` fixes that: these
tests pin the single-compute behaviour, the conditions under which a
peer's entry must NOT be adopted (aged out, superseded by telemetry),
and that a driven cluster actually exercises the sharing path.
"""

import pytest

from repro.core.stochastic import StochasticValue
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.serving import (
    ClosedLoop,
    ClusterConfig,
    ForecastCache,
    LoadDriver,
    SharedRefreshLedger,
    demo_cluster,
)
from repro.workload.loadgen import single_mode_trace
from repro.workload.modes import LoadMode

RESOURCE = "cpu:m0"


@pytest.fixture
def nws():
    service = NetworkWeatherService(
        degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.4))
    )
    trace = single_mode_trace(LoadMode(mean=0.6, std=0.05, weight=1.0), 600.0, rng=1)
    service.register(RESOURCE, trace)
    service.advance_to(60.0)
    return service


def counting(nws, calls):
    """Wrap ``nws.query_qualified`` to count underlying computes."""
    original = nws.query_qualified

    def wrapped(resource, **kwargs):
        calls[resource] = calls.get(resource, 0) + 1
        return original(resource, **kwargs)

    nws.query_qualified = wrapped
    return nws


class TestSharedRefreshLedger:
    def test_two_caches_compute_once(self, nws):
        calls: dict = {}
        counting(nws, calls)
        ledger = SharedRefreshLedger()
        a = ForecastCache(nws, ledger=ledger)
        b = ForecastCache(nws, ledger=ledger)

        first = a.get(RESOURCE, 60.0)
        second = b.get(RESOURCE, 60.0)

        assert calls[RESOURCE] == 1, "the replica cache re-ran the qualified query"
        assert second is first  # the exact QualifiedForecast object is adopted
        assert ledger.stats() == {"publishes": 1, "shared_hits": 1, "entries": 1}
        assert a.stats()["refreshes"] == 1 and a.stats()["shared_hits"] == 0
        assert b.stats()["refreshes"] == 0 and b.stats()["shared_hits"] == 1

    def test_unshared_caches_still_double_compute(self, nws):
        # The contention the ledger exists to fix, pinned as a contrast.
        calls: dict = {}
        counting(nws, calls)
        ForecastCache(nws).get(RESOURCE, 60.0)
        ForecastCache(nws).get(RESOURCE, 60.0)
        assert calls[RESOURCE] == 2

    def test_aged_out_entries_are_not_adopted(self, nws):
        calls: dict = {}
        counting(nws, calls)
        ledger = SharedRefreshLedger()
        a = ForecastCache(nws, refresh_interval=5.0, ledger=ledger)
        b = ForecastCache(nws, refresh_interval=5.0, ledger=ledger)

        a.get(RESOURCE, 60.0)
        b.get(RESOURCE, 66.0)  # a's publication is older than b's interval

        assert calls[RESOURCE] == 2
        assert ledger.shared_hits == 0

    def test_new_telemetry_blocks_adoption(self, nws):
        calls: dict = {}
        counting(nws, calls)
        ledger = SharedRefreshLedger()
        a = ForecastCache(nws, refresh_interval=30.0, ledger=ledger)
        b = ForecastCache(nws, refresh_interval=30.0, ledger=ledger)

        a.get(RESOURCE, 60.0)
        # New measurements arrive: the publication is now stale relative
        # to the data even though it is young in wall time.
        b.ingest_to(70.0)
        b.get(RESOURCE, 70.0)

        assert calls[RESOURCE] == 2, "b adopted a forecast superseded by telemetry"
        assert ledger.shared_hits == 0

    def test_private_entries_still_hit_before_the_ledger(self, nws):
        ledger = SharedRefreshLedger()
        a = ForecastCache(nws, ledger=ledger)
        a.get(RESOURCE, 60.0)
        a.get(RESOURCE, 61.0)
        assert a.stats()["hits"] == 1
        assert ledger.shared_hits == 0

    def test_hit_rate_counts_shared_hits(self, nws):
        ledger = SharedRefreshLedger()
        a = ForecastCache(nws, ledger=ledger)
        b = ForecastCache(nws, ledger=ledger)
        a.get(RESOURCE, 60.0)
        b.get(RESOURCE, 60.0)
        assert b.stats()["hit_rate"] == 1.0


class TestClusterSharing:
    def test_driven_cluster_shares_refreshes(self):
        cluster, _, _ = demo_cluster(
            duration=600.0,
            config=ClusterConfig(n_workers=4, replication=2),
            rng=9,
        )
        driver = LoadDriver(
            cluster, cluster.models, ClosedLoop(clients=8), max_requests=200, rng=9
        )
        report = driver.run()
        assert report.errors == 0
        stats = cluster.ledger.stats()
        # Several workers serve shards over the same five NWS resources;
        # the sharing path must actually fire under load.
        assert stats["shared_hits"] > 0
        per_worker_shared = sum(
            w.forecasts.stats()["shared_hits"] for w in cluster.workers.values()
        )
        assert per_worker_shared == stats["shared_hits"]
