"""Tests for repro.distributions.modal — mode detection and GMM EM."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.distributions.modal import (
    ModeEstimate,
    find_modes_histogram,
    fit_gaussian_mixture,
)


def trimodal_sample(n=4000, rng=0):
    """The Figure 5 shape: modes near 0.94, 0.49, 0.33."""
    gen = np.random.default_rng(rng)
    return np.concatenate(
        [
            gen.normal(0.94, 0.025, int(0.45 * n)),
            gen.normal(0.49, 0.02, int(0.35 * n)),
            gen.normal(0.33, 0.02, int(0.20 * n)),
        ]
    )


class TestModeEstimate:
    def test_value_conversion(self):
        m = ModeEstimate(weight=0.5, mean=0.48, std=0.025)
        assert m.value == StochasticValue.from_std(0.48, 0.025)


class TestHistogramModes:
    def test_finds_three_modes(self):
        modes = find_modes_histogram(trimodal_sample(), bins=40)
        assert len(modes) == 3
        centers = sorted(m.mean for m in modes)
        assert centers[0] == pytest.approx(0.33, abs=0.03)
        assert centers[1] == pytest.approx(0.49, abs=0.03)
        assert centers[2] == pytest.approx(0.94, abs=0.03)

    def test_weights_normalised(self):
        modes = find_modes_histogram(trimodal_sample())
        assert sum(m.weight for m in modes) == pytest.approx(1.0)

    def test_sorted_by_weight(self):
        modes = find_modes_histogram(trimodal_sample())
        weights = [m.weight for m in modes]
        assert weights == sorted(weights, reverse=True)

    def test_dominant_mode_first(self):
        modes = find_modes_histogram(trimodal_sample())
        assert modes[0].mean == pytest.approx(0.94, abs=0.03)

    def test_unimodal_single_mode(self):
        rng = np.random.default_rng(1)
        modes = find_modes_histogram(rng.normal(5.0, 1.0, 3000), bins=30)
        assert len(modes) == 1
        assert modes[0].mean == pytest.approx(5.0, abs=0.1)

    def test_min_mass_filters_noise(self):
        rng = np.random.default_rng(2)
        data = np.concatenate([rng.normal(0, 1, 2000), rng.normal(10, 0.1, 10)])
        modes = find_modes_histogram(data, bins=40, min_mass=0.05)
        assert len(modes) == 1


class TestGaussianMixture:
    def test_recovers_trimodal(self):
        gmm = fit_gaussian_mixture(trimodal_sample(8000), 3)
        means = sorted(gmm.means)
        assert means[0] == pytest.approx(0.33, abs=0.02)
        assert means[1] == pytest.approx(0.49, abs=0.02)
        assert means[2] == pytest.approx(0.94, abs=0.02)

    def test_weights_sum_to_one(self):
        gmm = fit_gaussian_mixture(trimodal_sample(), 3)
        assert float(gmm.weights.sum()) == pytest.approx(1.0, abs=1e-6)

    def test_recovers_weights(self):
        gmm = fit_gaussian_mixture(trimodal_sample(8000), 3)
        top = max(gmm.modes(), key=lambda m: m.weight)
        assert top.weight == pytest.approx(0.45, abs=0.05)
        assert top.mean == pytest.approx(0.94, abs=0.02)

    def test_single_component_is_normal_fit(self):
        rng = np.random.default_rng(3)
        data = rng.normal(2.0, 0.5, 3000)
        gmm = fit_gaussian_mixture(data, 1)
        assert gmm.means[0] == pytest.approx(2.0, abs=0.03)
        assert gmm.stds[0] == pytest.approx(0.5, abs=0.03)

    def test_log_likelihood_improves_with_components(self):
        data = trimodal_sample(3000)
        ll1 = fit_gaussian_mixture(data, 1).log_likelihood
        ll3 = fit_gaussian_mixture(data, 3).log_likelihood
        assert ll3 > ll1

    def test_pdf_integrates_to_one(self):
        gmm = fit_gaussian_mixture(trimodal_sample(2000), 3)
        xs = np.linspace(-0.5, 2.0, 10_001)
        assert float(np.trapezoid(gmm.pdf(xs), xs)) == pytest.approx(1.0, abs=1e-3)

    def test_sampling_statistics(self):
        gmm = fit_gaussian_mixture(trimodal_sample(4000), 3)
        samples = gmm.sample(50_000, rng=0)
        data = trimodal_sample(4000)
        assert samples.mean() == pytest.approx(data.mean(), abs=0.02)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_gaussian_mixture([1.0, 2.0, 3.0], 2)

    def test_zero_components_rejected(self):
        with pytest.raises(ValueError):
            fit_gaussian_mixture(trimodal_sample(100), 0)

    def test_converges_before_max_iter(self):
        gmm = fit_gaussian_mixture(trimodal_sample(2000), 3, max_iter=300)
        assert gmm.n_iter < 300
