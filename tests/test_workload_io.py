"""Tests for repro.workload.io — trace persistence."""

import numpy as np
import pytest

from repro.workload.io import (
    load_trace_csv,
    load_traces_npz,
    save_trace_csv,
    save_traces_npz,
)
from repro.workload.loadgen import bursty_trace
from repro.workload.modes import PLATFORM2_MODES
from repro.workload.traces import Trace


def sample_trace():
    return Trace.from_samples(2.5, 5.0, [0.2, 0.8, 0.5])


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = save_trace_csv(trace, tmp_path / "t.csv")
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(loaded.edges, trace.edges)
        np.testing.assert_array_equal(loaded.values, trace.values)

    def test_roundtrip_generated_trace(self, tmp_path):
        trace = bursty_trace(PLATFORM2_MODES, 600.0, rng=0)
        loaded = load_trace_csv(save_trace_csv(trace, tmp_path / "b.csv"))
        np.testing.assert_array_equal(loaded.values, trace.values)

    def test_creates_parent_dirs(self, tmp_path):
        path = save_trace_csv(sample_trace(), tmp_path / "deep" / "dir" / "t.csv")
        assert path.exists()

    def test_header_validated(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="not a trace CSV"):
            load_trace_csv(bad)

    def test_malformed_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("edge,value\n0.0,1.0\n5.0,2.0\n")  # missing final edge
        with pytest.raises(ValueError, match="malformed"):
            load_trace_csv(bad)


class TestNpz:
    def test_roundtrip_multiple(self, tmp_path):
        traces = {
            "cpu-a": sample_trace(),
            "cpu-b": bursty_trace(PLATFORM2_MODES, 300.0, rng=1),
        }
        path = save_traces_npz(traces, tmp_path / "set.npz")
        loaded = load_traces_npz(path)
        assert sorted(loaded) == ["cpu-a", "cpu-b"]
        for name in traces:
            np.testing.assert_array_equal(loaded[name].edges, traces[name].edges)
            np.testing.assert_array_equal(loaded[name].values, traces[name].values)

    def test_name_with_slash_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces_npz({"a/b": sample_trace()}, tmp_path / "x.npz")

    def test_empty_set(self, tmp_path):
        path = save_traces_npz({}, tmp_path / "empty.npz")
        assert load_traces_npz(path) == {}
