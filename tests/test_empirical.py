"""Tests for repro.core.empirical — sample-cloud stochastic values."""

import numpy as np
import pytest

from repro.core.arithmetic import Relatedness
from repro.core.empirical import EmpiricalValue, as_empirical
from repro.core.stochastic import StochasticValue


class TestConstruction:
    def test_from_samples_copies(self):
        data = np.array([1.0, 2.0, 3.0])
        e = EmpiricalValue.from_samples(data)
        data[0] = 99.0
        assert e.samples[0] == 1.0

    def test_from_stochastic_statistics(self):
        e = EmpiricalValue.from_stochastic(StochasticValue(8.0, 2.0), n=50_000, rng=0)
        assert e.mean == pytest.approx(8.0, abs=0.03)
        assert e.std == pytest.approx(1.0, abs=0.02)

    def test_point(self):
        e = EmpiricalValue.point(4.0)
        assert e.mean == 4.0 and e.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalValue.from_samples([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalValue.from_samples([1.0, float("nan")])


class TestSummaries:
    def test_to_stochastic(self):
        e = EmpiricalValue.from_samples([1.0, 2.0, 3.0])
        sv = e.to_stochastic()
        assert sv.mean == pytest.approx(2.0)
        assert sv.spread == pytest.approx(2.0 * np.std([1, 2, 3], ddof=1))

    def test_interval_is_quantile_based(self):
        rng = np.random.default_rng(1)
        # Strongly skewed cloud: quantile interval is asymmetric.
        e = EmpiricalValue.from_samples(rng.lognormal(0, 1, 50_000))
        lo, hi = e.interval
        assert hi - e.mean > e.mean - lo

    def test_cdf_and_quantile_roundtrip(self):
        rng = np.random.default_rng(2)
        e = EmpiricalValue.from_samples(rng.normal(0, 1, 10_000))
        for p in (0.1, 0.5, 0.9):
            assert e.cdf(e.quantile(p)) == pytest.approx(p, abs=0.01)

    def test_quantile_bounds_rejected(self):
        e = EmpiricalValue.from_samples([1.0, 2.0])
        with pytest.raises(ValueError):
            e.quantile(0.0)

    def test_contains_and_prob_above(self):
        e = EmpiricalValue.from_samples(np.linspace(0, 100, 1001))
        assert e.contains(50.0)
        assert not e.contains(-10.0)
        assert e.prob_above(90.0) == pytest.approx(0.1, abs=0.01)


class TestArithmetic:
    def test_unrelated_add_matches_normal_rule(self):
        x = EmpiricalValue.from_stochastic(StochasticValue(8.0, 2.0), n=100_000, rng=0)
        y = EmpiricalValue.from_stochastic(StochasticValue(5.0, 1.5), n=100_000, rng=1)
        out = x.add(y, Relatedness.UNRELATED, rng=2).to_stochastic()
        assert out.mean == pytest.approx(13.0, abs=0.03)
        assert out.spread == pytest.approx(2.5, rel=0.02)

    def test_related_add_is_comonotonic(self):
        x = EmpiricalValue.from_stochastic(StochasticValue(0.0, 2.0), n=50_000, rng=0)
        y = EmpiricalValue.from_stochastic(StochasticValue(0.0, 2.0), n=50_000, rng=1)
        related = x.add(y, Relatedness.RELATED)
        unrelated = x.add(y, Relatedness.UNRELATED, rng=2)
        assert related.std > unrelated.std

    def test_divide_keeps_jensen_term(self):
        rng = np.random.default_rng(3)
        loads = rng.uniform(0.3, 0.7, 100_000)
        t = EmpiricalValue.point(10.0).divide(EmpiricalValue.from_samples(loads), rng=4)
        assert t.mean == pytest.approx(float((10.0 / loads).mean()), rel=0.01)
        assert t.mean > 10.0 / loads.mean()  # Jensen

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            EmpiricalValue.point(1.0).divide(EmpiricalValue.from_samples([0.0, 1.0]))

    def test_scale_and_shift_exact(self):
        e = EmpiricalValue.from_samples([1.0, 2.0, 3.0])
        assert e.scale(2.0).mean == pytest.approx(4.0)
        assert e.shift(1.0).mean == pytest.approx(3.0)
        assert e.scale(2.0).std == pytest.approx(2.0 * e.std)
        assert e.shift(1.0).std == pytest.approx(e.std)

    def test_mixed_size_alignment(self):
        x = EmpiricalValue.from_samples(np.linspace(0, 1, 100))
        y = EmpiricalValue.from_samples(np.linspace(0, 1, 1000))
        out = x.add(y, rng=0)
        assert out.samples.size == 1000

    def test_maximum_matches_clark_for_normals(self):
        from repro.core.group_ops import clark_max

        a, b = StochasticValue(4.0, 2.0), StochasticValue(3.5, 3.0)
        emp = EmpiricalValue.maximum(
            [
                EmpiricalValue.from_stochastic(a, n=200_000, rng=0),
                EmpiricalValue.from_stochastic(b, n=200_000, rng=1),
            ],
            rng=2,
        )
        approx = clark_max(a, b)
        assert emp.mean == pytest.approx(approx.mean, rel=0.01)

    def test_maximum_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalValue.maximum([])


class TestCoercion:
    def test_as_empirical_passthrough(self):
        e = EmpiricalValue.point(1.0)
        assert as_empirical(e) is e

    def test_as_empirical_from_number(self):
        assert as_empirical(3.0).mean == 3.0

    def test_as_empirical_from_stochastic(self):
        e = as_empirical(StochasticValue(5.0, 1.0))
        assert e.mean == pytest.approx(5.0, abs=0.1)

    def test_as_empirical_point_stochastic(self):
        e = as_empirical(StochasticValue.point(7.0))
        assert np.all(e.samples == 7.0)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_empirical("cloud")

    def test_str(self):
        assert "empirical[" in str(EmpiricalValue.from_samples([1.0, 2.0]))
