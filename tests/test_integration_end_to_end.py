"""End-to-end integration journeys across the whole stack.

Each test is a realistic user workflow touching several subsystems at
once — the paths a downstream adopter would actually run.
"""

import numpy as np
import pytest

from repro.core import Relatedness, StochasticValue
from repro.core.empirical import EmpiricalValue
from repro.core.intervals import assess_predictions
from repro.nws import NetworkWeatherService
from repro.scheduling import ServiceRange, advise_decomposition
from repro.sor import (
    build_sor_program,
    equal_strips,
    simulate_adaptive_sor,
    simulate_sor,
)
from repro.structural import (
    EvalPolicy,
    SORModel,
    bindings_for_platform,
    model_from_program,
    program_bindings,
)
from repro.workload import platform2, table1_platform
from repro.workload.io import load_traces_npz, save_traces_npz
from repro.workload.platforms import platform_from_traces


class TestPredictionJourney:
    """NWS monitoring -> model -> prediction -> QoS contract -> reality."""

    @pytest.fixture(scope="class")
    def setup(self):
        plat = platform2(duration=1500.0, rng=101)
        nws = NetworkWeatherService()
        for m in plat.machines:
            nws.register(f"cpu:{m.name}", m.availability)
        nws.register("net", plat.network.default_segment.availability)
        nws.advance_to(600.0)
        return plat, nws

    def test_full_prediction_cycle(self, setup):
        plat, nws = setup
        n, its = 1200, 20
        dec = equal_strips(n, 4)
        loads = {i: nws.query_window(f"cpu:{m.name}", 90.0) for i, m in enumerate(plat.machines)}
        bw = nws.query_window("net", 90.0)
        model = SORModel(n_procs=4, iterations=its, include_latency=True)
        pred = model.predict(bindings_for_platform(plat.machines, plat.network, dec,
                                                   loads=loads, bw_avail=bw))
        actual = simulate_sor(plat.machines, plat.network, n, its,
                              decomposition=dec, start_time=600.0)
        # The prediction is meaningful: right order of magnitude, and the
        # actual lands within a generously widened interval.
        assert 0.3 * pred.mean < actual.elapsed < 3.0 * pred.mean
        widened = StochasticValue(pred.mean, 2 * pred.spread)
        assert widened.contains(actual.elapsed)

    def test_qos_contract_from_prediction(self, setup):
        plat, nws = setup
        dec = equal_strips(1200, 4)
        loads = {i: nws.query_window(f"cpu:{m.name}", 90.0) for i, m in enumerate(plat.machines)}
        pred = SORModel(4, 20).predict(
            bindings_for_platform(plat.machines, plat.network, dec, loads=loads)
        )
        contract = ServiceRange(pred)
        deadline = contract.guaranteed_bound(0.95)
        assert deadline > pred.mean
        assert contract.violation_probability(deadline) == pytest.approx(0.05, abs=1e-6)

    def test_advisor_consumes_nws_values(self, setup):
        plat, nws = setup
        loads = {i: nws.query_window(f"cpu:{m.name}", 90.0) for i, m in enumerate(plat.machines)}
        choice = advise_decomposition(plat.machines, plat.network, 1200, 20, loads, lam=1.0)
        subset = [plat.machines[i] for i in choice.best.machine_indices]
        run = simulate_sor(subset, plat.network, 1200, 20,
                           decomposition=choice.best.decomposition, start_time=600.0)
        equal_run = simulate_sor(plat.machines, plat.network, 1200, 20, start_time=600.0)
        assert run.elapsed < equal_run.elapsed


class TestArtifactJourney:
    """Generate a platform, persist it, replay it, predict on the replay."""

    def test_replayed_platform_reproduces_predictions(self, tmp_path):
        plat = platform2(duration=900.0, rng=102)
        payload = {m.name: m.availability for m in plat.machines}
        path = save_traces_npz(payload, tmp_path / "plat.npz")
        loaded = load_traces_npz(path)
        kinds = {"sparc5": "sparc5", "sparc10": "sparc10",
                 "ultra-1": "ultrasparc", "ultra-2": "ultrasparc"}
        replay = platform_from_traces(loaded, kinds=kinds)
        order = {m.name: m for m in replay.machines}
        machines = [order[m.name] for m in plat.machines]

        dec = equal_strips(800, 4)
        b1 = bindings_for_platform(plat.machines, plat.network, dec)
        b2 = bindings_for_platform(machines, replay.network, dec)
        m = SORModel(4, 10)
        assert m.predict(b2).mean == pytest.approx(m.predict(b1).mean)


class TestModelEquivalenceJourney:
    """Hand-written model, compiled model, and simulator must agree."""

    def test_three_way_agreement_dedicated(self):
        from repro.workload import dedicated_platform

        plat = dedicated_platform()
        n, its = 1000, 10
        dec = equal_strips(n, 4)
        program = build_sor_program(n, dec, its)

        hand = SORModel(4, its, include_latency=True).predict(
            bindings_for_platform(plat.machines, plat.network, dec)
        )
        compiled = model_from_program(program, include_latency=True).evaluate(
            program_bindings(plat.machines, plat.network, program)
        )
        actual = simulate_sor(plat.machines, plat.network, n, its, decomposition=dec)

        assert compiled.mean == pytest.approx(hand.mean, rel=1e-12)
        assert hand.mean == pytest.approx(actual.elapsed, rel=0.005)


class TestSchedulingJourney:
    """Stochastic info changes decisions; decisions change outcomes."""

    def test_risk_knob_flows_through_to_outcomes(self):
        from repro.batch import BatchApplication, run_scheduling_study

        plat = table1_platform(duration=2500.0, rng=103)
        app = BatchApplication(total_units=120, elements_per_unit=2.5e6)
        neutral, averse = run_scheduling_study(plat, app, lams=(0.0, 2.0), n_rounds=8)
        if neutral.lam != 0.0:
            neutral, averse = averse, neutral

        share = lambda s: np.mean([r.units[0] / sum(r.units) for r in s.rounds])  # noqa: E731
        err = lambda s: np.mean(  # noqa: E731
            [abs(r.realized - r.predicted.mean) / r.realized for r in s.rounds]
        )
        assert share(averse) > share(neutral)
        assert err(averse) < err(neutral)


class TestAdaptiveJourney:
    def test_adaptive_prediction_quality_assessment(self):
        # Run several adaptive executions and assess a naive prediction
        # against them with the paper's metrics machinery.
        plat = platform2(duration=2500.0, rng=104)
        preds, acts = [], []
        for k in range(4):
            t = 600.0 + k * 400.0
            loads = {
                i: StochasticValue.from_samples(m.availability.window(t - 90, t).values)
                for i, m in enumerate(plat.machines)
            }
            dec = equal_strips(1200, 4)
            preds.append(
                SORModel(4, 30).predict(
                    bindings_for_platform(plat.machines, plat.network, dec, loads=loads)
                )
            )
            acts.append(
                simulate_adaptive_sor(
                    plat.machines, plat.network, 1200, 30, segment_iterations=5, start_time=t
                ).elapsed
            )
        quality = assess_predictions(preds, acts)
        assert quality.n == 4
        assert quality.mean_mean_error < 2.0  # sane magnitude


class TestEmpiricalJourney:
    def test_empirical_pipeline_matches_normal_in_gaussian_regime(self):
        # When everything really is normal, the cloud pipeline and the
        # closed-form pipeline must agree.
        rng = np.random.default_rng(105)
        load_sv = StochasticValue(0.6, 0.05)
        t_norm = StochasticValue.point(30.0) / load_sv
        t_emp = EmpiricalValue.point(30.0).divide(
            EmpiricalValue.from_stochastic(load_sv, n=200_000, rng=rng)
        )
        assert t_emp.mean == pytest.approx(t_norm.mean, rel=0.01)
        assert t_emp.spread == pytest.approx(t_norm.spread, rel=0.05)
