"""Property-based tests for traces, capacity inversion, and decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.capacity import completion_time
from repro.distributions.histogram import empirical_cdf
from repro.faults import FaultPlan, FaultPlanConfig
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.sor.decomposition import equal_strips, weighted_strips
from repro.workload.traces import Trace

# Strategy: a random piecewise-constant availability trace.
trace_values = st.lists(
    st.floats(0.05, 1.0, allow_nan=False), min_size=1, max_size=30
)


@st.composite
def traces(draw):
    values = draw(trace_values)
    dt = draw(st.floats(0.5, 20.0, allow_nan=False))
    start = draw(st.floats(-50.0, 50.0, allow_nan=False))
    return Trace.from_samples(start, dt, values)


class TestTraceProperties:
    @given(traces(), st.floats(-100, 200), st.floats(0, 100), st.floats(0, 100))
    def test_integrate_additive(self, trace, t0, d1, d2):
        a = trace.integrate(t0, t0 + d1)
        b = trace.integrate(t0 + d1, t0 + d1 + d2)
        whole = trace.integrate(t0, t0 + d1 + d2)
        assert whole == pytest.approx(a + b, rel=1e-9, abs=1e-9)

    @given(traces(), st.floats(-100, 200), st.floats(0.001, 100))
    def test_integral_bounded_by_extremes(self, trace, t0, d):
        total = trace.integrate(t0, t0 + d)
        vmin, vmax = trace.values.min(), trace.values.max()
        assert vmin * d - 1e-9 <= total <= vmax * d + 1e-9

    @given(traces(), st.floats(-100, 200))
    def test_value_at_in_range(self, trace, t):
        v = trace.value_at(t)
        assert trace.values.min() <= v <= trace.values.max()

    @given(traces())
    def test_mean_within_value_range(self, trace):
        m = trace.mean()
        assert trace.values.min() - 1e-12 <= m <= trace.values.max() + 1e-12


class TestCapacityProperties:
    @settings(max_examples=60)
    @given(
        traces(),
        st.floats(0.0, 500.0),
        st.floats(0.5, 50.0),
        st.floats(-100.0, 200.0),
    )
    def test_inversion_roundtrip(self, trace, work, rate, t0):
        t1 = completion_time(work, rate, trace, t0)
        assert t1 >= t0
        delivered = rate * trace.integrate(t0, t1)
        assert delivered == pytest.approx(work, rel=1e-7, abs=1e-7)

    @settings(max_examples=60)
    @given(traces(), st.floats(0.1, 100.0), st.floats(0.5, 20.0), st.floats(-50, 100))
    def test_more_work_takes_longer(self, trace, work, rate, t0):
        t_small = completion_time(work, rate, trace, t0)
        t_big = completion_time(2 * work, rate, trace, t0)
        assert t_big >= t_small

    @settings(max_examples=60)
    @given(traces(), st.floats(0.1, 100.0), st.floats(0.5, 20.0), st.floats(-50, 100))
    def test_faster_rate_finishes_earlier(self, trace, work, rate, t0):
        slow = completion_time(work, rate, trace, t0)
        fast = completion_time(work, 2 * rate, trace, t0)
        assert fast <= slow + 1e-12


class TestDecompositionProperties:
    @given(st.integers(3, 500), st.integers(1, 12))
    def test_equal_strips_partition(self, n, p):
        if p > n - 2:
            return
        dec = equal_strips(n, p)
        assert sum(s.rows for s in dec.strips) == n - 2
        # Balanced: strip sizes differ by at most one row.
        sizes = [s.rows for s in dec.strips]
        assert max(sizes) - min(sizes) <= 1

    @given(
        st.integers(10, 300),
        st.lists(st.floats(0.1, 10.0, allow_nan=False), min_size=1, max_size=6),
    )
    def test_weighted_strips_partition(self, n, weights):
        if len(weights) > n - 2:
            return
        dec = weighted_strips(n, weights)
        assert sum(s.rows for s in dec.strips) == n - 2
        assert all(s.rows >= 1 for s in dec.strips)

    @given(st.integers(10, 300), st.integers(1, 8))
    def test_elements_sum_to_interior(self, n, p):
        if p > n - 2:
            return
        dec = equal_strips(n, p)
        assert sum(dec.elements(q) for q in range(p)) == (n - 2) * (n - 2)


class TestFaultDeterminismProperties:
    """Same seed => byte-identical fault schedules and identical outputs."""

    CONFIG = FaultPlanConfig(
        sensor_dropout_rate=0.01,
        machine_crash_rate=0.002,
        link_outage_rate=0.003,
        corruption_rate=0.02,
    )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_byte_identical_schedule(self, seed):
        kw = dict(
            resources=["cpu:a", "cpu:b"],
            machines=["a", "b"],
            links=[("a", "b")],
            horizon=2000.0,
        )
        first = FaultPlan.generate(self.CONFIG, rng=seed, **kw)
        second = FaultPlan.generate(self.CONFIG, rng=seed, **kw)
        assert first.fingerprint() == second.fingerprint()
        assert first.canonical() == second.canonical()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_entity_insertion_order_does_not_matter(self, seed):
        cfg = self.CONFIG
        a = FaultPlan.generate(
            cfg, resources=["r1", "r2", "r3"], machines=["x", "y"], links=[], horizon=1500.0,
            rng=seed,
        )
        b = FaultPlan.generate(
            cfg, resources=["r3", "r1", "r2"], machines=["y", "x"], links=[], horizon=1500.0,
            rng=seed,
        )
        assert a.fingerprint() == b.fingerprint()

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_end_to_end_predictions_identical(self, seed):
        """Two fresh pipelines from one seed agree measurement for measurement."""

        def pipeline():
            trace = Trace.from_samples(0.0, 5.0, [0.3, 0.5, 0.7, 0.4] * 40)
            plan = FaultPlan.generate(
                self.CONFIG, resources=["cpu:a"], machines=[], links=[], horizon=800.0, rng=seed
            )
            nws = NetworkWeatherService(degradation=DegradationPolicy(), faults=plan)
            nws.register("cpu:a", trace)
            q = nws.query_qualified("cpu:a", t=700.0)
            h = nws.health()["cpu:a"]
            return (q.value.mean, q.value.spread, q.quality, q.staleness, tuple(h.items()))

        assert pipeline() == pipeline()


class TestEmpiricalCdfProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100))
    def test_cdf_is_distribution(self, data):
        x, p = empirical_cdf(data)
        assert np.all(np.diff(x) >= 0)
        assert np.all((p > 0) & (p <= 1.0))
        assert p[-1] == 1.0
