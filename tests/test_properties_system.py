"""Property-based tests for traces, capacity inversion, and decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.capacity import completion_time
from repro.distributions.histogram import empirical_cdf
from repro.sor.decomposition import equal_strips, weighted_strips
from repro.workload.traces import Trace

# Strategy: a random piecewise-constant availability trace.
trace_values = st.lists(
    st.floats(0.05, 1.0, allow_nan=False), min_size=1, max_size=30
)


@st.composite
def traces(draw):
    values = draw(trace_values)
    dt = draw(st.floats(0.5, 20.0, allow_nan=False))
    start = draw(st.floats(-50.0, 50.0, allow_nan=False))
    return Trace.from_samples(start, dt, values)


class TestTraceProperties:
    @given(traces(), st.floats(-100, 200), st.floats(0, 100), st.floats(0, 100))
    def test_integrate_additive(self, trace, t0, d1, d2):
        a = trace.integrate(t0, t0 + d1)
        b = trace.integrate(t0 + d1, t0 + d1 + d2)
        whole = trace.integrate(t0, t0 + d1 + d2)
        assert whole == pytest.approx(a + b, rel=1e-9, abs=1e-9)

    @given(traces(), st.floats(-100, 200), st.floats(0.001, 100))
    def test_integral_bounded_by_extremes(self, trace, t0, d):
        total = trace.integrate(t0, t0 + d)
        vmin, vmax = trace.values.min(), trace.values.max()
        assert vmin * d - 1e-9 <= total <= vmax * d + 1e-9

    @given(traces(), st.floats(-100, 200))
    def test_value_at_in_range(self, trace, t):
        v = trace.value_at(t)
        assert trace.values.min() <= v <= trace.values.max()

    @given(traces())
    def test_mean_within_value_range(self, trace):
        m = trace.mean()
        assert trace.values.min() - 1e-12 <= m <= trace.values.max() + 1e-12


class TestCapacityProperties:
    @settings(max_examples=60)
    @given(
        traces(),
        st.floats(0.0, 500.0),
        st.floats(0.5, 50.0),
        st.floats(-100.0, 200.0),
    )
    def test_inversion_roundtrip(self, trace, work, rate, t0):
        t1 = completion_time(work, rate, trace, t0)
        assert t1 >= t0
        delivered = rate * trace.integrate(t0, t1)
        assert delivered == pytest.approx(work, rel=1e-7, abs=1e-7)

    @settings(max_examples=60)
    @given(traces(), st.floats(0.1, 100.0), st.floats(0.5, 20.0), st.floats(-50, 100))
    def test_more_work_takes_longer(self, trace, work, rate, t0):
        t_small = completion_time(work, rate, trace, t0)
        t_big = completion_time(2 * work, rate, trace, t0)
        assert t_big >= t_small

    @settings(max_examples=60)
    @given(traces(), st.floats(0.1, 100.0), st.floats(0.5, 20.0), st.floats(-50, 100))
    def test_faster_rate_finishes_earlier(self, trace, work, rate, t0):
        slow = completion_time(work, rate, trace, t0)
        fast = completion_time(work, 2 * rate, trace, t0)
        assert fast <= slow + 1e-12


class TestDecompositionProperties:
    @given(st.integers(3, 500), st.integers(1, 12))
    def test_equal_strips_partition(self, n, p):
        if p > n - 2:
            return
        dec = equal_strips(n, p)
        assert sum(s.rows for s in dec.strips) == n - 2
        # Balanced: strip sizes differ by at most one row.
        sizes = [s.rows for s in dec.strips]
        assert max(sizes) - min(sizes) <= 1

    @given(
        st.integers(10, 300),
        st.lists(st.floats(0.1, 10.0, allow_nan=False), min_size=1, max_size=6),
    )
    def test_weighted_strips_partition(self, n, weights):
        if len(weights) > n - 2:
            return
        dec = weighted_strips(n, weights)
        assert sum(s.rows for s in dec.strips) == n - 2
        assert all(s.rows >= 1 for s in dec.strips)

    @given(st.integers(10, 300), st.integers(1, 8))
    def test_elements_sum_to_interior(self, n, p):
        if p > n - 2:
            return
        dec = equal_strips(n, p)
        assert sum(dec.elements(q) for q in range(p)) == (n - 2) * (n - 2)


class TestEmpiricalCdfProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100))
    def test_cdf_is_distribution(self, data):
        x, p = empirical_cdf(data)
        assert np.all(np.diff(x) >= 0)
        assert np.all((p > 0) & (p <= 1.0))
        assert p[-1] == 1.0
