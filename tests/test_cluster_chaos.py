"""Chaos soak: kill a serving worker mid-load, watch the cluster absorb it.

A 4-worker cluster serves a seeded closed-loop drive while a
:class:`~repro.faults.plan.FaultPlan` crashes the primary owner of at
least one shard in the middle of the window.  The cluster must keep
answering — not a single :class:`ErrorResponse` — with honest quality
tags: answers for the migrated shards are served by standby replicas,
tagged ``failover=True`` and degraded to at least ``stale``; after the
primary restarts, its shards return to ``fresh`` primary-served
answers.
"""

import pytest

from repro.faults import FaultPlan
from repro.serving import ClosedLoop, ClusterConfig, ErrorResponse, LoadDriver, demo_cluster

SEED = 7
# The drive starts after demo warmup (t=60); the crash sits mid-window.
CRASH_START = 60.4
CRASH_END = 61.2


@pytest.fixture(scope="module")
def soak():
    # Pick the crash target *from the placement*: a worker that is the
    # primary owner of at least one shard, so failover actually fires.
    probe, _, _ = demo_cluster(
        duration=900.0,
        config=ClusterConfig(n_workers=4, replication=2),
        rng=SEED,
    )
    victim = probe.owners(probe.models[0])[0]
    victim_models = [m for m in probe.models if probe.owners(m)[0] == victim]

    faults = FaultPlan.crashes({victim: [(CRASH_START, CRASH_END)]})
    cluster, _, _ = demo_cluster(
        duration=900.0,
        config=ClusterConfig(n_workers=4, replication=2),
        faults=faults,
        rng=SEED,
    )
    driver = LoadDriver(
        cluster,
        cluster.models,
        ClosedLoop(clients=16),
        max_requests=600,
        rng=SEED,
    )
    return cluster, driver.run(), victim, victim_models


class TestClusterChaos:
    def test_placement_is_reproducible(self, soak):
        cluster, _, victim, victim_models = soak
        assert victim_models, "crash victim must primary-own at least one shard"
        assert all(cluster.owners(m)[0] == victim for m in victim_models)

    def test_zero_error_responses(self, soak):
        cluster, report, _, _ = soak
        assert report.errors == 0
        assert not any(isinstance(r, ErrorResponse) for r in report.responses)
        assert cluster.metrics.counter("errors_total").value == 0

    def test_every_request_answered_exactly_once(self, soak):
        _, report, _, _ = soak
        assert report.ok + report.shed == report.submitted == 600
        ids = [(r.client_id, r.request_id) for r in report.responses]
        assert len(ids) == len(set(ids)), "duplicate answers for one request"

    def test_crash_and_recovery_observed(self, soak):
        cluster, _, _, _ = soak
        counters = cluster.metrics.snapshot()["counters"]
        assert counters["worker_crashes_total"] == 1
        assert counters["worker_recoveries_total"] == 1
        assert counters["shard_migrations_total"] >= 1
        assert counters["failovers_total"] > 0

    def test_dead_worker_serves_nothing_while_down(self, soak):
        _, report, victim, _ = soak
        during = [
            r for r in report.responses
            if r.ok and CRASH_START <= r.completed < CRASH_END
        ]
        assert during, "no answers landed inside the crash window"
        assert victim not in {r.worker for r in during}

    def test_failover_answers_are_tagged_and_degraded(self, soak):
        _, report, victim, _ = soak
        failover = [r for r in report.responses if r.ok and r.failover]
        assert failover, "the crash produced no failover answers"
        # Honest tagging: a standby's answer is never silently fresh.
        assert all(r.quality in ("stale", "fallback") for r in failover)
        assert all(r.worker != victim for r in failover)

    def test_quality_degrades_monotonically_on_migrated_shards(self, soak):
        _, report, _, victim_models = soak
        ok = [r for r in report.responses if r.ok and r.model in victim_models]
        before = [r for r in ok if r.completed < CRASH_START]
        during = [r for r in ok if CRASH_START <= r.completed < CRASH_END]
        assert before and during
        assert all(r.quality == "fresh" and not r.failover for r in before)
        # fresh -> stale/fallback, never an error, never silently fresh.
        assert all(r.quality in ("stale", "fallback") for r in during if r.failover)

    def test_full_recovery_to_fresh_after_restart(self, soak):
        _, report, victim, victim_models = soak
        after = [
            r for r in report.responses
            if r.ok and r.model in victim_models and r.completed > CRASH_END + 0.5
        ]
        assert after, "no answers for migrated shards after the restart"
        assert all(r.quality == "fresh" and not r.failover for r in after)
        # The restarted primary is serving its shards again.
        assert victim in {r.worker for r in after}

    def test_inflight_registry_drains(self, soak):
        cluster, _, _, _ = soak
        assert cluster.snapshot()["in_flight"] == 0

    def test_metrics_count_only_delivered_answers(self, soak):
        # Work the victim computed but never delivered (discarded by its
        # drain) must not inflate any ledger: the merged latency
        # histogram and the per-worker responses_ok sum both equal the
        # number of answers clients actually received.
        cluster, report, _, _ = soak
        snap = cluster.snapshot()
        assert snap["aggregated"]["latency_s"]["count"] == report.ok
        per_worker_ok = sum(
            w["metrics"]["counters"]["responses_ok"] for w in snap["workers"].values()
        )
        assert per_worker_ok == report.ok
        assert snap["cluster"]["counters"]["responses_ok"] == report.ok
