"""Integration tests: the experiment harnesses reproduce the paper's shapes.

These are the paper's headline claims, checked end to end against the
simulated production environment (small run counts to keep the suite
fast; the benchmarks run the full-size versions).
"""

import numpy as np
import pytest

from repro.experiments.dedicated import run_dedicated_validation
from repro.experiments.figures import figure1_2, figure3_4, figure5
from repro.experiments.platform1 import run_platform1
from repro.experiments.platform2 import platform2_load_study, run_platform2
from repro.experiments.report import figure_series_table, prediction_table, write_csv
from repro.experiments.tables import table1_allocations, table1_rows, table2_checks


class TestDedicated:
    def test_model_within_two_percent(self):
        # Section 2.2.1: "the structural model ... predicted overall
        # application execution times to within 2%".
        rows = run_dedicated_validation(sizes=(1000, 1400, 2000))
        for row in rows:
            assert row.error < 0.02, f"n={row.problem_size}: {row.error:.2%}"

    def test_times_grow_with_problem_size(self):
        rows = run_dedicated_validation(sizes=(1000, 2000))
        assert rows[1].actual > rows[0].actual


class TestPlatform1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_platform1(sizes=(1000, 1400, 1800), rng=11)

    def test_preliminary_load_matches_paper(self, result):
        # "a stochastic load value of 0.48 +/- 0.05"
        assert result.stochastic_load.mean == pytest.approx(0.48, abs=0.03)
        assert result.stochastic_load.spread == pytest.approx(0.05, abs=0.03)

    def test_all_actuals_inside_stochastic_range(self, result):
        # Figure 9: "execution time measurements fall entirely within the
        # stochastic prediction".
        assert result.quality.capture == 1.0
        assert result.quality.max_range_error == 0.0

    def test_mean_error_moderate(self, result):
        # Paper: max discrepancy between means and actuals 9.7%.
        assert result.quality.max_mean_error < 0.12

    def test_load_trace_stays_in_mode(self, result):
        vals = result.load_trace_values
        assert np.percentile(vals, 95) < 0.6
        assert np.percentile(vals, 20) > 0.35

    def test_predictions_grow_with_size(self, result):
        means = [p.prediction.mean for p in result.points]
        assert means == sorted(means)


class TestPlatform2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_platform2(1600, n_runs=12, rng=42)

    def test_majority_captured(self, result):
        # Paper: ~80% of actual execution times inside the range.
        assert result.quality.capture >= 0.7

    def test_range_errors_small(self, result):
        # Paper: maximum out-of-range error ~14%.
        assert result.quality.max_range_error < 0.30

    def test_mean_errors_substantially_larger(self, result):
        # Paper: means err up to 38.6% — far worse than the range error.
        assert result.quality.max_mean_error > result.quality.max_range_error

    def test_predictions_are_stochastic(self, result):
        assert all(p.prediction.spread > 0 for p in result.points)

    def test_load_study_is_multimodal_and_bursty(self):
        _, values = platform2_load_study(duration=3600.0, rng=7)
        jumps = np.abs(np.diff(values))
        assert (jumps > 0.08).sum() > 5
        assert values.std() > 0.08


class TestFigures:
    def test_figure1_2_near_normal(self):
        fig = figure1_2(rng=0)
        assert fig.fit.looks_normal()
        assert fig.fit.value.mean == pytest.approx(11.0, abs=0.5)
        assert fig.cdf_y[-1] == 1.0

    def test_figure3_4_long_tailed(self):
        fig = figure3_4(n_samples=20_000, rng=1)
        assert fig.coverage is not None
        assert 0.87 <= fig.coverage.actual_coverage <= 0.94
        assert not fig.fit.looks_normal()

    def test_figure5_three_modes(self):
        fig = figure5(rng=2)
        assert len(fig.modes) == 3
        centers = sorted(m.mean for m in fig.modes)
        assert centers[2] == pytest.approx(0.94, abs=0.04)

    def test_histograms_match_samples(self):
        fig = figure1_2(rng=3)
        assert int(fig.histogram.counts.sum()) == fig.samples.size


class TestTables:
    def test_table1_verbatim(self):
        rows = {r.setting: r for r in table1_rows()}
        assert rows["Dedicated"].machine_a.mean == 10.0
        assert rows["Dedicated"].machine_b.mean == 5.0
        assert rows["Production (point)"].machine_a.mean == 12.0
        assert rows["Production (stochastic)"].machine_b.percent == pytest.approx(30.0)

    def test_table1_allocations_narrative(self):
        allocs = table1_allocations(120)
        assert allocs["Dedicated"] == (40, 80)
        assert allocs["Production (point)"] == (60, 60)
        a, b = allocs["Production (stochastic)"]
        assert a > b  # risk-averse: more work on the low-variance machine

    def test_table2_linear_rules_exact(self):
        checks = {c.operation: c for c in table2_checks(rng=0, n_samples=100_000)}
        for op in ("point + stochastic", "point * stochastic", "add (unrelated)"):
            c = checks[op]
            assert c.mean_error < 0.01
            assert c.rule_result.spread == pytest.approx(c.mc_spread, rel=0.03)

    def test_table2_related_add_conservative(self):
        checks = {c.operation: c for c in table2_checks(rng=1, n_samples=100_000)}
        c = checks["add (related)"]
        # Conservative rule: spread at least the comonotonic MC spread.
        assert c.rule_result.spread >= c.mc_spread * 0.99

    def test_table2_first_order_division_beats_paper_literal(self):
        checks = {c.operation: c for c in table2_checks(rng=2, n_samples=100_000)}
        good = checks["divide (first-order reciprocal)"]
        literal = checks["divide (paper-literal reciprocal)"]
        good_err = abs(good.rule_result.spread - good.mc_spread)
        literal_err = abs(literal.rule_result.spread - literal.mc_spread)
        assert good_err < literal_err


class TestReport:
    def test_prediction_table_format(self):
        result = run_platform2(1000, n_runs=3, rng=5)
        out = prediction_table(result.points)
        assert "actual_s" in out
        assert out.count("\n") >= 4

    def test_figure_series_table(self):
        out = figure_series_table("Figure X", [1.0, 2.0], [3.0, 4.0])
        assert out.splitlines()[0] == "Figure X"

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert len(text.splitlines()) == 3
