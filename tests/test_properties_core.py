"""Property-based tests (hypothesis) for the stochastic-value core."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arithmetic import (
    Relatedness,
    add,
    multiply,
    reciprocal,
    scale,
    shift,
    subtract,
    sum_stochastic,
)
from repro.core.group_ops import MaxStrategy, clark_max, stochastic_max
from repro.core.intervals import out_of_range_error
from repro.core.stochastic import StochasticValue as SV

means = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
pos_means = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)
spreads = st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def stochastic_values(draw, mean_strategy=means):
    return SV(draw(mean_strategy), draw(spreads))


class TestArithmeticProperties:
    @given(stochastic_values(), stochastic_values())
    def test_add_means_always_sum(self, x, y):
        for rel in Relatedness:
            assert add(x, y, rel).mean == x.mean + y.mean

    @given(stochastic_values(), stochastic_values())
    def test_add_commutative(self, x, y):
        for rel in Relatedness:
            a, b = add(x, y, rel), add(y, x, rel)
            assert a.mean == b.mean and a.spread == b.spread

    @given(stochastic_values(), stochastic_values())
    def test_related_spread_dominates_unrelated(self, x, y):
        rel = add(x, y, Relatedness.RELATED)
        unrel = add(x, y, Relatedness.UNRELATED)
        assert rel.spread >= unrel.spread - 1e-9 * max(rel.spread, 1.0)

    @given(stochastic_values())
    def test_add_zero_identity(self, x):
        out = shift(x, 0.0)
        assert out.mean == x.mean and out.spread == x.spread

    @given(stochastic_values())
    def test_scale_one_identity(self, x):
        out = scale(x, 1.0)
        assert out.mean == x.mean and out.spread == x.spread

    @given(stochastic_values(), st.floats(-1e3, 1e3, allow_nan=False))
    def test_scale_spread_nonnegative(self, x, c):
        assert scale(x, c).spread >= 0.0

    @given(stochastic_values(), stochastic_values())
    def test_subtract_is_add_of_negation(self, x, y):
        for rel in Relatedness:
            a = subtract(x, y, rel)
            b = add(x, -y, rel)
            assert a.mean == b.mean and a.spread == b.spread

    @given(stochastic_values(), stochastic_values())
    def test_multiply_spread_nonnegative(self, x, y):
        for rel in Relatedness:
            assert multiply(x, y, rel).spread >= 0.0

    @given(stochastic_values(pos_means))
    def test_reciprocal_point_limit(self, x):
        # As spread -> 0 the reciprocal must approach the point reciprocal.
        point = reciprocal(SV.point(x.mean))
        assert point.mean == 1.0 / x.mean
        small = reciprocal(SV(x.mean, 1e-12))
        assert math.isclose(small.mean, point.mean)
        assert small.spread <= 1e-6 * max(abs(point.mean), 1.0) + 1e-9

    @given(st.lists(stochastic_values(), min_size=1, max_size=8))
    def test_sum_related_spread_is_total(self, values):
        out = sum_stochastic(values, Relatedness.RELATED)
        assert math.isclose(
            out.spread, sum(v.spread for v in values), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(st.lists(stochastic_values(), min_size=1, max_size=8))
    def test_sum_unrelated_quadrature(self, values):
        out = sum_stochastic(values, Relatedness.UNRELATED)
        expected = math.sqrt(sum(v.spread**2 for v in values))
        assert math.isclose(out.spread, expected, rel_tol=1e-9, abs_tol=1e-9)


class TestIntervalProperties:
    @given(stochastic_values(), means)
    def test_out_of_range_error_nonnegative(self, sv, actual):
        assert out_of_range_error(sv, actual) >= 0.0

    @given(stochastic_values(), means)
    def test_out_of_range_zero_iff_contained(self, sv, actual):
        err = out_of_range_error(sv, actual)
        assert (err == 0.0) == sv.contains(actual)

    @given(stochastic_values(), means)
    def test_out_of_range_at_most_distance_to_mean(self, sv, actual):
        assert out_of_range_error(sv, actual) <= abs(actual - sv.mean) + 1e-9


class TestMaxProperties:
    @settings(max_examples=50)
    @given(st.lists(stochastic_values(st.floats(-100, 100)), min_size=1, max_size=5))
    def test_selector_max_mean_dominates_all_means(self, values):
        out = stochastic_max(values, MaxStrategy.BY_MEAN)
        assert out.mean >= max(v.mean for v in values) - 1e-12

    @settings(max_examples=50)
    @given(
        stochastic_values(st.floats(-100, 100)),
        stochastic_values(st.floats(-100, 100)),
    )
    def test_clark_mean_at_least_individual_means(self, x, y):
        out = clark_max(x, y)
        assert out.mean >= max(x.mean, y.mean) - 1e-6 * (1 + abs(out.mean))

    @settings(max_examples=50)
    @given(
        stochastic_values(st.floats(-100, 100)),
        stochastic_values(st.floats(-100, 100)),
    )
    def test_clark_commutative(self, x, y):
        a, b = clark_max(x, y), clark_max(y, x)
        assert math.isclose(a.mean, b.mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(a.spread, b.spread, rel_tol=1e-7, abs_tol=1e-7)


class TestQuantileProperties:
    @settings(max_examples=50)
    @given(
        stochastic_values(st.floats(-100, 100)),
        st.floats(0.01, 0.99),
        st.floats(0.01, 0.99),
    )
    def test_quantile_monotone(self, sv, p1, p2):
        if sv.is_point:
            return
        lo, hi = sorted((p1, p2))
        assert sv.quantile(lo) <= sv.quantile(hi) + 1e-12
