"""Tests for repro.nws.forecasters — the NWS forecaster family."""

import numpy as np
import pytest

from repro.nws.forecasters import (
    AdaptiveMedian,
    AutoRegressive,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
    default_forecasters,
)


class TestLastValue:
    def test_predicts_last(self):
        f = LastValue()
        assert f.predict() is None
        f.observe(3.0)
        assert f.predict() == 3.0
        f.observe(5.0)
        assert f.predict() == 5.0


class TestRunningMean:
    def test_cumulative_mean(self):
        f = RunningMean()
        assert f.predict() is None
        for v in (1.0, 2.0, 3.0):
            f.observe(v)
        assert f.predict() == pytest.approx(2.0)


class TestSlidingWindowMean:
    def test_window_limits_history(self):
        f = SlidingWindowMean(2)
        for v in (10.0, 1.0, 3.0):
            f.observe(v)
        assert f.predict() == pytest.approx(2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(0)

    def test_name_includes_window(self):
        assert SlidingWindowMean(16).name == "mean_w16"


class TestExponentialSmoothing:
    def test_first_observation_initialises(self):
        f = ExponentialSmoothing(0.3)
        f.observe(10.0)
        assert f.predict() == 10.0

    def test_smoothing_update(self):
        f = ExponentialSmoothing(0.5)
        f.observe(0.0)
        f.observe(10.0)
        assert f.predict() == pytest.approx(5.0)

    def test_gain_one_tracks_last(self):
        f = ExponentialSmoothing(1.0)
        f.observe(1.0)
        f.observe(7.0)
        assert f.predict() == 7.0

    def test_invalid_gain_rejected(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(1.5)


class TestMedians:
    def test_sliding_median_robust_to_spike(self):
        f = SlidingWindowMedian(5)
        for v in (1.0, 1.0, 100.0, 1.0, 1.0):
            f.observe(v)
        assert f.predict() == 1.0

    def test_adaptive_median_flushes_on_jump(self):
        f = AdaptiveMedian(max_window=16, jump_factor=3.0)
        for _ in range(10):
            f.observe(0.9)
        # A mode switch: the old history should be dropped.
        f.observe(0.2)
        f.observe(0.21)
        assert f.predict() == pytest.approx(0.205, abs=0.01)

    def test_adaptive_median_keeps_history_without_jump(self):
        f = AdaptiveMedian(max_window=16)
        rng = np.random.default_rng(0)
        for v in 0.5 + 0.01 * rng.standard_normal(16):
            f.observe(float(v))
        assert f.predict() == pytest.approx(0.5, abs=0.02)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowMedian(0)
        with pytest.raises(ValueError):
            AdaptiveMedian(max_window=1)
        with pytest.raises(ValueError):
            AdaptiveMedian(jump_factor=0.0)


class TestAutoRegressive:
    def test_learns_ar1_process(self):
        rng = np.random.default_rng(1)
        f = AutoRegressive(window=64)
        phi, x = 0.9, 0.0
        errs_ar, errs_mean = [], []
        mean_f = RunningMean()
        for _ in range(500):
            nxt = phi * x + rng.normal(0, 0.1)
            p_ar, p_mean = f.predict(), mean_f.predict()
            if p_ar is not None and p_mean is not None:
                errs_ar.append(abs(p_ar - nxt))
                errs_mean.append(abs(p_mean - nxt))
            f.observe(nxt)
            mean_f.observe(nxt)
            x = nxt
        # On a strongly autocorrelated series, AR beats the global mean.
        assert np.mean(errs_ar) < np.mean(errs_mean)

    def test_constant_series_predicts_constant(self):
        f = AutoRegressive(window=8)
        for _ in range(10):
            f.observe(4.2)
        assert f.predict() == pytest.approx(4.2)

    def test_small_window_rejected(self):
        with pytest.raises(ValueError):
            AutoRegressive(window=3)


class TestDefaults:
    def test_names_unique(self):
        names = [f.name for f in default_forecasters()]
        assert len(set(names)) == len(names)

    def test_family_size(self):
        assert len(default_forecasters()) >= 10

    def test_fresh_instances_each_call(self):
        a, b = default_forecasters(), default_forecasters()
        a[0].observe(1.0)
        assert b[0].predict() is None
