"""Tests for repro.distributions.mixture — Section 2.1.2 modal combination."""

import math

import pytest

from repro.core.arithmetic import Relatedness
from repro.core.stochastic import StochasticValue as SV
from repro.distributions.mixture import (
    combine_modes_linear,
    combine_modes_mixture,
    normalize_weights,
)
from repro.distributions.modal import ModeEstimate


class TestNormalizeWeights:
    def test_normalises(self):
        assert normalize_weights([1.0, 3.0]) == [0.25, 0.75]

    def test_already_normalised(self):
        assert normalize_weights([0.5, 0.5]) == [0.5, 0.5]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_weights([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_weights([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_weights([])


class TestLinearCombination:
    def test_paper_formula(self):
        # P1(M1 +/- SD1) + P2(M2 +/- SD2) + P3(M3 +/- SD3) with the
        # conservative (related) sum.
        modes = [
            (0.5, SV.from_std(0.94, 0.03)),
            (0.3, SV.from_std(0.49, 0.02)),
            (0.2, SV.from_std(0.33, 0.02)),
        ]
        out = combine_modes_linear(modes)
        assert out.mean == pytest.approx(0.5 * 0.94 + 0.3 * 0.49 + 0.2 * 0.33)
        assert out.spread == pytest.approx(2 * (0.5 * 0.03 + 0.3 * 0.02 + 0.2 * 0.02))

    def test_unrelated_variant_smaller_spread(self):
        modes = [(0.5, SV(1.0, 0.2)), (0.5, SV(2.0, 0.2))]
        rel = combine_modes_linear(modes, Relatedness.RELATED)
        unrel = combine_modes_linear(modes, Relatedness.UNRELATED)
        assert unrel.spread < rel.spread

    def test_weights_normalised(self):
        modes = [(2.0, SV(1.0, 0.1)), (2.0, SV(3.0, 0.1))]
        out = combine_modes_linear(modes)
        assert out.mean == pytest.approx(2.0)

    def test_accepts_mode_estimates(self):
        modes = [ModeEstimate(0.6, 1.0, 0.1), ModeEstimate(0.4, 2.0, 0.1)]
        out = combine_modes_linear(modes)
        assert out.mean == pytest.approx(1.4)

    def test_single_mode_identity(self):
        out = combine_modes_linear([(1.0, SV(0.48, 0.05))])
        assert out.mean == pytest.approx(0.48)
        assert out.spread == pytest.approx(0.05)


class TestMixtureCombination:
    def test_includes_between_mode_variance(self):
        modes = [(0.5, SV.from_std(0.0, 0.1)), (0.5, SV.from_std(10.0, 0.1))]
        mix = combine_modes_mixture(modes)
        lin = combine_modes_linear(modes)
        assert mix.mean == pytest.approx(lin.mean)
        assert mix.std == pytest.approx(math.sqrt(0.1**2 + 25.0), rel=1e-6)
        assert mix.spread > lin.spread

    def test_degenerate_single_mode(self):
        mix = combine_modes_mixture([(1.0, SV.from_std(2.0, 0.3))])
        assert mix.mean == pytest.approx(2.0)
        assert mix.std == pytest.approx(0.3)

    def test_matches_sampled_mixture(self):
        import numpy as np

        rng = np.random.default_rng(0)
        modes = [(0.7, SV.from_std(1.0, 0.2)), (0.3, SV.from_std(3.0, 0.5))]
        mix = combine_modes_mixture(modes)
        comp = rng.choice([0, 1], size=200_000, p=[0.7, 0.3])
        mus = np.array([1.0, 3.0])[comp]
        sds = np.array([0.2, 0.5])[comp]
        samples = rng.normal(mus, sds)
        assert mix.mean == pytest.approx(samples.mean(), abs=0.01)
        assert mix.std == pytest.approx(samples.std(), rel=0.01)
