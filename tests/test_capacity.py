"""Tests for repro.cluster.capacity — work/time inversion."""

import numpy as np
import pytest

from repro.cluster.capacity import completion_time, effective_rate
from repro.workload.traces import Trace


def step_trace():
    # availability 0.5 for 50 s, then 1.0 for 50 s.
    return Trace.from_samples(0.0, 50.0, [0.5, 1.0])


class TestEffectiveRate:
    def test_value(self):
        assert effective_rate(100.0, step_trace(), 10.0) == 50.0
        assert effective_rate(100.0, step_trace(), 60.0) == 100.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            effective_rate(0.0, step_trace(), 0.0)


class TestCompletionTime:
    def test_zero_work_instant(self):
        assert completion_time(0.0, 10.0, step_trace(), 3.0) == 3.0

    def test_within_first_segment(self):
        # rate = 10 * 0.5 = 5/s -> 20 units take 4 s.
        assert completion_time(20.0, 10.0, step_trace(), 0.0) == pytest.approx(4.0)

    def test_across_segments(self):
        # First 50 s deliver 250 units; remaining 50 at rate 10 -> 5 s.
        assert completion_time(300.0, 10.0, step_trace(), 0.0) == pytest.approx(55.0)

    def test_exact_segment_boundary(self):
        assert completion_time(250.0, 10.0, step_trace(), 0.0) == pytest.approx(50.0)

    def test_beyond_trace_end_uses_last_value(self):
        # After t=100 the trace clamps to 1.0.
        t = completion_time(10_000.0, 10.0, step_trace(), 0.0)
        # 250 (seg 1) + 500 (seg 2) done by t=100; 9250 left at rate 10.
        assert t == pytest.approx(100.0 + 925.0)

    def test_start_before_trace_uses_first_value(self):
        t = completion_time(50.0, 10.0, step_trace(), -10.0)
        # 10 s at rate 5 = 50 units -> finishes exactly at trace start.
        assert t == pytest.approx(0.0)

    def test_start_mid_segment(self):
        t = completion_time(100.0, 10.0, step_trace(), 40.0)
        # 10 s at rate 5 = 50, then 50 at rate 10 = 5 s.
        assert t == pytest.approx(55.0)

    def test_start_after_trace_end(self):
        t = completion_time(100.0, 10.0, step_trace(), 200.0)
        assert t == pytest.approx(210.0)

    def test_constant_trace(self):
        tr = Trace.constant(0.25)
        assert completion_time(100.0, 4.0, tr, 7.0) == pytest.approx(107.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            completion_time(-1.0, 10.0, step_trace(), 0.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            completion_time(1.0, 0.0, step_trace(), 0.0)

    def test_consistency_with_integrate(self):
        # completion_time is the inverse of Trace.integrate.
        rng = np.random.default_rng(0)
        trace = Trace.from_samples(0.0, 5.0, rng.uniform(0.1, 1.0, 40))
        for work in (3.0, 57.0, 111.0):
            t_end = completion_time(work, 2.0, trace, 12.0)
            delivered = 2.0 * trace.integrate(12.0, t_end)
            assert delivered == pytest.approx(work, rel=1e-9)
