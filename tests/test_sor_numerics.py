"""Tests for repro.sor grid, kernel, and solver numerics."""

import numpy as np
import pytest

from repro.sor.grid import SORGrid, optimal_omega
from repro.sor.kernel import color_mask, residual_norm, sor_iteration, sor_sweep_color
from repro.sor.solver import solve


class TestGrid:
    def test_laplace_problem_shapes(self):
        g = SORGrid.laplace_problem(17)
        assert g.boundary.shape == (17, 17)
        assert g.source.shape == (15, 15)
        assert g.interior_points == 225

    def test_optimal_omega_range(self):
        for n in (10, 100, 1000):
            w = optimal_omega(n)
            assert 1.0 < w < 2.0

    def test_optimal_omega_grows_with_n(self):
        assert optimal_omega(100) > optimal_omega(10)

    def test_initial_field_zero_interior(self):
        g = SORGrid.laplace_problem(9)
        u = g.initial_field()
        assert np.all(u[1:-1, 1:-1] == 0.0)
        np.testing.assert_array_equal(u[0, :], g.boundary[0, :])

    def test_exact_solution_harmonic(self):
        g = SORGrid.laplace_problem(9)
        exact = g.exact_laplace_solution()
        # x + y is discrete-harmonic: residual of exact solution is 0.
        assert residual_norm(exact) < 1e-14

    def test_hot_edge_problem(self):
        g = SORGrid.hot_edge_problem(9)
        assert np.all(g.boundary[0, :] == 1.0)
        assert np.all(g.boundary[-1, :] == 0.0)

    def test_poisson_problem_source_scaling(self):
        g = SORGrid.poisson_problem(11, lambda x, y: np.ones_like(x))
        h = 1.0 / 10.0
        np.testing.assert_allclose(g.source, h * h)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SORGrid.laplace_problem(2)

    def test_bad_omega_rejected(self):
        with pytest.raises(ValueError):
            SORGrid.laplace_problem(9, omega=2.0)
        with pytest.raises(ValueError):
            SORGrid.laplace_problem(9, omega=0.0)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            SORGrid(n=5, boundary=np.zeros((4, 4)), source=np.zeros((3, 3)), omega=1.5)
        with pytest.raises(ValueError):
            SORGrid(n=5, boundary=np.zeros((5, 5)), source=np.zeros((4, 4)), omega=1.5)


class TestKernel:
    def test_color_masks_partition_interior(self):
        red = color_mask(9, 0)
        black = color_mask(9, 1)
        assert np.all(red ^ black)

    def test_color_mask_checkerboard(self):
        red = color_mask(5, 0)
        # Interior point (1,1) in full coordinates has parity 0 -> red.
        assert red[0, 0]
        assert not red[0, 1]
        assert red[1, 1]

    def test_offset_shifts_parity(self):
        base = color_mask(5, 0, offset=0)
        shifted = color_mask(5, 0, offset=1)
        np.testing.assert_array_equal(shifted, ~base)

    def test_invalid_color_rejected(self):
        with pytest.raises(ValueError):
            color_mask(5, 2)

    def test_sweep_updates_only_one_color(self):
        g = SORGrid.laplace_problem(9)
        u = g.initial_field()
        before = u.copy()
        sor_sweep_color(u, g.omega, 0)
        changed = u[1:-1, 1:-1] != before[1:-1, 1:-1]
        np.testing.assert_array_equal(changed[~color_mask(9, 0)], False)

    def test_sweep_returns_point_count(self):
        g = SORGrid.laplace_problem(9)
        u = g.initial_field()
        red = sor_sweep_color(u, g.omega, 0)
        black = sor_sweep_color(u, g.omega, 1)
        assert red + black == g.interior_points

    def test_iteration_reduces_residual(self):
        g = SORGrid.laplace_problem(17)
        u = g.initial_field()
        r0 = residual_norm(u)
        for _ in range(10):
            sor_iteration(u, g.omega)
        assert residual_norm(u) < r0

    def test_tiny_field_rejected(self):
        with pytest.raises(ValueError):
            sor_sweep_color(np.zeros((2, 2)), 1.5, 0)

    def test_exact_solution_is_fixed_point(self):
        g = SORGrid.laplace_problem(9)
        u = g.exact_laplace_solution().copy()
        sor_iteration(u, g.omega)
        np.testing.assert_allclose(u, g.exact_laplace_solution(), atol=1e-13)


class TestMaskCache:
    def test_repeat_calls_share_one_array(self):
        a = color_mask(9, 0)
        b = color_mask(9, 0)
        assert a is b

    def test_cached_mask_is_read_only(self):
        mask = color_mask(9, 0)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_offset_parity_shares_cache_entry(self):
        # Only the offset's parity affects the mask, so offsets 1 and 3
        # must resolve to the same cached array.
        assert color_mask(9, 0, offset=1) is color_mask(9, 0, offset=3)
        assert color_mask(9, 0, offset=0) is color_mask(9, 0, offset=2)

    def test_sweep_count_matches_mask_sum(self):
        g = SORGrid.laplace_problem(11)
        u = g.initial_field()
        assert sor_sweep_color(u, g.omega, 0) == int(color_mask(11, 0).sum())
        assert sor_sweep_color(u, g.omega, 1) == int(color_mask(11, 1).sum())


class TestSolver:
    def test_converges_to_exact(self):
        g = SORGrid.laplace_problem(33)
        result = solve(g, tol=1e-10)
        assert result.converged
        err = np.abs(result.field - g.exact_laplace_solution()).max()
        assert err < 1e-8

    def test_residuals_decrease_overall(self):
        g = SORGrid.laplace_problem(33)
        result = solve(g, tol=1e-10)
        assert result.residuals[-1] < result.residuals[0]

    def test_max_iterations_caps(self):
        g = SORGrid.laplace_problem(65)
        result = solve(g, tol=1e-14, max_iterations=5)
        assert not result.converged
        assert result.iterations == 5

    def test_check_every_spacing(self):
        g = SORGrid.laplace_problem(17)
        result = solve(g, tol=1e-10, check_every=10)
        assert result.converged
        assert result.iterations % 10 == 0 or result.iterations <= 10_000

    def test_optimal_omega_faster_than_gauss_seidel(self):
        g_opt = SORGrid.laplace_problem(33)
        g_gs = SORGrid.laplace_problem(33, omega=1.0)
        assert solve(g_opt, tol=1e-8).iterations < solve(g_gs, tol=1e-8).iterations

    def test_poisson_matches_manufactured_solution(self):
        # -laplace(u) = 2 pi^2 sin(pi x) sin(pi y), u = sin(pi x) sin(pi y).
        n = 41
        g = SORGrid.poisson_problem(
            n, lambda x, y: 2 * np.pi**2 * np.sin(np.pi * x) * np.sin(np.pi * y)
        )
        result = solve(g, tol=1e-10)
        xs = np.linspace(0, 1, n)
        exact = np.sin(np.pi * xs)[:, None] * np.sin(np.pi * xs)[None, :]
        err = np.abs(result.field - exact).max()
        assert err < 5e-3  # discretisation error at h = 1/40

    def test_hot_edge_maximum_principle(self):
        g = SORGrid.hot_edge_problem(25)
        result = solve(g, tol=1e-9)
        interior = result.field[1:-1, 1:-1]
        assert interior.min() >= 0.0
        assert interior.max() <= 1.0

    def test_bad_args_rejected(self):
        g = SORGrid.laplace_problem(9)
        with pytest.raises(ValueError):
            solve(g, tol=0.0)
        with pytest.raises(ValueError):
            solve(g, max_iterations=0)
        with pytest.raises(ValueError):
            solve(g, check_every=0)
