"""Chaos integration: the full prediction pipeline under injected faults.

One seeded fault plan drives all three layers at once — sensors drop
samples and deliver corrupted telemetry, the NWS degrades its answers,
machines crash mid-execution and messages retry — and the Platform-1
style SOR prediction cycle must still hold together: every forecast and
prediction stays finite, intervals only widen as staleness grows, and
the simulated run completes.
"""

import math

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.faults import FaultPlan, FaultPlanConfig, Outage
from repro.nws.service import DegradationPolicy, NetworkWeatherService
from repro.sor.decomposition import equal_strips
from repro.sor.distributed import simulate_sor
from repro.structural.sor_model import SORModel, bindings_for_platform
from repro.workload.platforms import platform1


CHAOS_CONFIG = FaultPlanConfig(
    sensor_dropout_rate=1 / 120.0,
    sensor_dropout_mean_duration=40.0,
    machine_crash_rate=1 / 900.0,
    machine_restart_mean=30.0,
    link_outage_rate=1 / 600.0,
    link_outage_mean_duration=4.0,
    corruption_rate=1 / 90.0,
)


@pytest.fixture(scope="module")
def chaos_run():
    """The Platform 1 cycle with every fault class active."""
    plat = platform1(duration=1800.0, rng=11)
    names = [m.name for m in plat.machines]
    resources = [f"cpu:{n}" for n in names]
    plan = FaultPlan.generate(
        CHAOS_CONFIG,
        resources=resources,
        machines=names,
        links=[(a, b) for i, a in enumerate(names) for b in names[i + 1 :]],
        horizon=1800.0,
        rng=23,
    )
    policy = DegradationPolicy(prior=StochasticValue(0.5, 0.3))
    nws = NetworkWeatherService(degradation=policy, faults=plan)
    for name, r in zip(names, resources):
        m = next(mm for mm in plat.machines if mm.name == name)
        nws.register(r, m.availability)
    return plat, plan, nws, resources


class TestChaosPipeline:
    def test_plan_actually_schedules_faults(self, chaos_run):
        _, plan, _, _ = chaos_run
        assert not plan.is_empty
        assert sum(len(v) for v in plan.sensor_dropouts.values()) > 0
        assert sum(len(v) for v in plan.corruptions.values()) > 0

    def test_sensors_record_the_damage(self, chaos_run):
        _, _, nws, _ = chaos_run
        nws.advance_to(600.0)
        health = nws.health()
        assert sum(h["missed"] for h in health.values()) > 0
        assert all(h["delivered"] > 0 for h in health.values())

    def test_all_forecasts_finite_and_tagged(self, chaos_run):
        _, _, nws, resources = chaos_run
        nws.advance_to(700.0)
        for r in resources:
            q = nws.query_qualified(r)
            assert q.quality in ("fresh", "stale", "fallback")
            assert math.isfinite(q.value.mean) and math.isfinite(q.value.spread)
            assert q.value.spread >= 0.0

    def test_prediction_finite_under_degraded_inputs(self, chaos_run):
        plat, _, nws, resources = chaos_run
        nws.advance_to(700.0)
        loads = {i: nws.query_qualified(r).value for i, r in enumerate(resources)}
        dec = equal_strips(600, len(plat.machines))
        model = SORModel(n_procs=len(plat.machines), iterations=10)
        pred = model.predict(bindings_for_platform(plat.machines, plat.network, dec, loads=loads))
        assert math.isfinite(pred.mean) and math.isfinite(pred.spread)
        assert pred.mean > 0.0

    def test_run_completes_under_faults(self, chaos_run):
        plat, plan, _, _ = chaos_run
        clean = simulate_sor(plat.machines, plat.network, 600, 10, start_time=700.0)
        out = simulate_sor(plat.machines, plat.network, 600, 10, start_time=700.0, faults=plan)
        assert math.isfinite(out.elapsed)
        assert out.elapsed >= clean.elapsed  # faults never speed a run up
        assert np.all(np.diff(out.iteration_ends) > 0)

    def test_interval_widens_monotonically_with_staleness(self):
        # A dedicated service whose only sensor goes permanently silent.
        plan = FaultPlan(sensor_dropouts={"cpu:x": (Outage(300.0, 1e9),)})
        nws = NetworkWeatherService(
            degradation=DegradationPolicy(prior=StochasticValue(0.5, 0.1)), faults=plan
        )
        plat = platform1(duration=400.0, rng=5)
        nws.register("cpu:x", plat.machines[0].availability)
        spreads = []
        for t in (290.0, 330.0, 420.0, 600.0, 1200.0, 5000.0):
            spreads.append(nws.query_qualified("cpu:x", t=t).value.spread)
        assert spreads == sorted(spreads)
        assert spreads[-1] > spreads[0]
        q = nws.query_qualified("cpu:x")
        assert q.quality == "fallback"

    def test_zero_rate_plan_is_bit_identical(self):
        """Acceptance gate: all-zero rates must not perturb a single bit."""
        plat = platform1(duration=900.0, rng=3)
        null_plan = FaultPlan.generate(
            FaultPlanConfig(),
            resources=["cpu:a"],
            machines=[m.name for m in plat.machines],
            links=[],
            horizon=900.0,
            rng=99,
        )
        clean_nws = NetworkWeatherService()
        faulted_nws = NetworkWeatherService(faults=null_plan)
        for m in plat.machines:
            clean_nws.register(f"cpu:{m.name}", m.availability)
            faulted_nws.register(f"cpu:{m.name}", m.availability)
        clean_nws.advance_to(600.0)
        faulted_nws.advance_to(600.0)
        for m in plat.machines:
            a = clean_nws.query(f"cpu:{m.name}")
            b = faulted_nws.query(f"cpu:{m.name}")
            assert a.mean == b.mean and a.spread == b.spread

        clean_run = simulate_sor(plat.machines, plat.network, 400, 5, start_time=600.0)
        faulted_run = simulate_sor(
            plat.machines, plat.network, 400, 5, start_time=600.0, faults=null_plan
        )
        assert clean_run.end == faulted_run.end
        assert clean_run.phase_time == faulted_run.phase_time
        assert clean_run.max_skew == faulted_run.max_skew
