"""Tests for repro.cluster.simulator — phase program execution."""

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.cluster.simulator import ClusterSimulator, IterativeProgram, Message, Phase
from repro.workload.traces import Trace


def two_machines(avail_a=1.0, avail_b=1.0, rate_a=100.0, rate_b=100.0):
    return [
        Machine("a", rate_a, availability=Trace.constant(avail_a)),
        Machine("b", rate_b, availability=Trace.constant(avail_b)),
    ]


def fast_network():
    return Network(SharedEthernet(dedicated_bytes_per_sec=1e12, latency=0.0))


class TestProgramValidation:
    def test_message_self_send_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 0, 10.0)

    def test_message_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -1.0)

    def test_phase_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Phase("p", (-1.0, 0.0))

    def test_phase_message_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Phase("p", (1.0, 1.0), (Message(0, 2, 1.0),))

    def test_program_needs_phases(self):
        with pytest.raises(ValueError):
            IterativeProgram("p", (), 1)

    def test_program_needs_iterations(self):
        with pytest.raises(ValueError):
            IterativeProgram("p", (Phase("a", (1.0,)),), 0)

    def test_program_consistent_widths(self):
        with pytest.raises(ValueError):
            IterativeProgram("p", (Phase("a", (1.0,)), Phase("b", (1.0, 2.0))), 1)

    def test_n_processors(self):
        prog = IterativeProgram("p", (Phase("a", (1.0, 2.0, 3.0)),), 2)
        assert prog.n_processors == 3


class TestSimulatorBasics:
    def test_compute_only_analytic(self):
        prog = IterativeProgram("p", (Phase("c", (100.0, 200.0)),), 3)
        sim = ClusterSimulator(two_machines(), fast_network())
        result = sim.run(prog)
        # Slower processor: 200 elements at 100/s = 2 s per iteration.
        assert result.elapsed == pytest.approx(6.0)
        np.testing.assert_allclose(result.iteration_ends, [2.0, 4.0, 6.0])

    def test_availability_scales_compute(self):
        prog = IterativeProgram("p", (Phase("c", (100.0, 100.0)),), 1)
        sim = ClusterSimulator(two_machines(avail_a=0.5), fast_network())
        assert sim.run(prog).elapsed == pytest.approx(2.0)

    def test_start_time_offsets_everything(self):
        prog = IterativeProgram("p", (Phase("c", (100.0, 100.0)),), 1)
        sim = ClusterSimulator(two_machines(), fast_network())
        result = sim.run(prog, start_time=50.0)
        assert result.start == 50.0
        assert result.end == pytest.approx(51.0)
        assert result.elapsed == pytest.approx(1.0)

    def test_machine_count_mismatch_rejected(self):
        prog = IterativeProgram("p", (Phase("c", (1.0,)),), 1)
        sim = ClusterSimulator(two_machines(), fast_network())
        with pytest.raises(ValueError):
            sim.run(prog)

    def test_duplicate_machine_names_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator([Machine("a", 1.0), Machine("a", 1.0)])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator([])


class TestCommunication:
    def test_transfer_time_charged(self):
        prog = IterativeProgram(
            "p",
            (Phase("c", (100.0, 100.0), (Message(0, 1, 1000.0),)),),
            1,
        )
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0))
        sim = ClusterSimulator(two_machines(), net)
        # 1 s compute + 1 s transfer.
        assert sim.run(prog).elapsed == pytest.approx(2.0)

    def test_endpoint_serialization(self):
        # Two messages sharing a sender must serialize.
        prog = IterativeProgram(
            "p",
            (
                Phase(
                    "c",
                    (0.0, 0.0, 0.0),
                    (Message(0, 1, 1000.0), Message(0, 2, 1000.0)),
                ),
            ),
            1,
        )
        machines = [Machine(n, 100.0) for n in "abc"]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0))
        result = ClusterSimulator(machines, net).run(prog)
        assert result.elapsed == pytest.approx(2.0)

    def test_disjoint_pairs_parallel(self):
        prog = IterativeProgram(
            "p",
            (
                Phase(
                    "c",
                    (0.0, 0.0, 0.0, 0.0),
                    (Message(0, 1, 1000.0), Message(2, 3, 1000.0)),
                ),
            ),
            1,
        )
        machines = [Machine(n, 100.0) for n in "abcd"]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0))
        result = ClusterSimulator(machines, net).run(prog)
        assert result.elapsed == pytest.approx(1.0)

    def test_skew_emerges_from_uneven_load(self):
        # Processor a is slower; at the end of the compute phase its
        # neighbour sits idle waiting for the ghost row (Figure 7).
        prog = IterativeProgram(
            "p",
            (
                Phase("compute", (100.0, 100.0)),
                Phase("comm", (0.0, 0.0), (Message(0, 1, 1.0), Message(1, 0, 1.0))),
            ),
            2,
        )
        sim = ClusterSimulator(two_machines(avail_a=0.5), fast_network())
        result = sim.run(prog)
        assert result.max_skew > 0.9  # a finishes compute ~1 s after b

    def test_exchange_resynchronizes_neighbours(self):
        # After a blocking exchange both endpoints are aligned again, so
        # a balanced program shows no skew at comm-phase boundaries.
        prog = IterativeProgram(
            "p", (Phase("c", (100.0, 100.0), (Message(0, 1, 1.0), Message(1, 0, 1.0))),), 2
        )
        sim = ClusterSimulator(two_machines(), fast_network())
        assert sim.run(prog).max_skew < 1e-6


class TestAccounting:
    def test_phase_time_sums_to_elapsed(self):
        prog = IterativeProgram(
            "p",
            (
                Phase("compute", (100.0, 50.0)),
                Phase("comm", (0.0, 0.0), (Message(0, 1, 500.0), Message(1, 0, 500.0))),
            ),
            4,
        )
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1000.0, latency=0.0))
        sim = ClusterSimulator(two_machines(), net)
        result = sim.run(prog)
        assert sum(result.phase_time.values()) == pytest.approx(result.elapsed)

    def test_iteration_ends_monotone(self):
        prog = IterativeProgram("p", (Phase("c", (10.0, 20.0)),), 5)
        sim = ClusterSimulator(two_machines(), fast_network())
        ends = sim.run(prog).iteration_ends
        assert np.all(np.diff(ends) > 0)

    def test_time_varying_load_changes_iterations(self):
        # First half slow, second half fast: iteration times shrink.
        trace = Trace.from_samples(0.0, 10.0, [0.25, 0.25, 1.0, 1.0])
        machines = [Machine("a", 100.0, availability=trace)]
        prog = IterativeProgram("p", (Phase("c", (500.0,)),), 2)
        result = ClusterSimulator(machines, Network()).run(prog)
        it1 = result.iteration_ends[0]
        it2 = result.iteration_ends[1] - result.iteration_ends[0]
        assert it1 > it2
