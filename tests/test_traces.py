"""Tests for repro.workload.traces — piecewise-constant traces."""

import numpy as np
import pytest

from repro.workload.traces import Trace


def simple_trace():
    # 0.5 on [0, 10), 1.0 on [10, 20), 0.25 on [20, 30)
    return Trace(edges=np.array([0.0, 10.0, 20.0, 30.0]), values=np.array([0.5, 1.0, 0.25]))


class TestConstruction:
    def test_from_samples(self):
        t = Trace.from_samples(5.0, 2.0, [1.0, 2.0, 3.0])
        assert t.start == 5.0
        assert t.end == 11.0
        assert t.value_at(7.5) == 2.0

    def test_constant(self):
        t = Trace.constant(0.7)
        assert t.value_at(-100.0) == 0.7
        assert t.value_at(1e9) == 0.7

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(edges=np.array([0.0, 1.0]), values=np.array([1.0, 2.0]))

    def test_nonmonotonic_edges_rejected(self):
        with pytest.raises(ValueError):
            Trace(edges=np.array([0.0, 2.0, 1.0]), values=np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(edges=np.array([0.0]), values=np.array([]))

    def test_nan_values_rejected(self):
        with pytest.raises(ValueError):
            Trace(edges=np.array([0.0, 1.0]), values=np.array([float("nan")]))

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_samples(0.0, 0.0, [1.0])


class TestQueries:
    def test_value_at_segments(self):
        t = simple_trace()
        assert t.value_at(0.0) == 0.5
        assert t.value_at(9.999) == 0.5
        assert t.value_at(10.0) == 1.0
        assert t.value_at(25.0) == 0.25

    def test_clamping(self):
        t = simple_trace()
        assert t.value_at(-5.0) == 0.5
        assert t.value_at(35.0) == 0.25

    def test_sample_vectorised(self):
        t = simple_trace()
        np.testing.assert_array_equal(t.sample([5.0, 15.0, 25.0]), [0.5, 1.0, 0.25])

    def test_duration(self):
        assert simple_trace().duration == 30.0


class TestIntegrate:
    def test_within_one_segment(self):
        assert simple_trace().integrate(2.0, 6.0) == pytest.approx(4.0 * 0.5)

    def test_across_segments(self):
        # 0.5*10 + 1.0*10 + 0.25*5 = 16.25
        assert simple_trace().integrate(0.0, 25.0) == pytest.approx(16.25)

    def test_full_span(self):
        assert simple_trace().integrate(0.0, 30.0) == pytest.approx(17.5)

    def test_clamped_head(self):
        assert simple_trace().integrate(-10.0, 0.0) == pytest.approx(5.0)

    def test_clamped_tail(self):
        assert simple_trace().integrate(30.0, 40.0) == pytest.approx(2.5)

    def test_straddling_everything(self):
        assert simple_trace().integrate(-10.0, 40.0) == pytest.approx(5.0 + 17.5 + 2.5)

    def test_zero_width(self):
        assert simple_trace().integrate(5.0, 5.0) == 0.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            simple_trace().integrate(5.0, 4.0)

    def test_mean(self):
        assert simple_trace().mean(0.0, 20.0) == pytest.approx(0.75)

    def test_mean_default_full_span(self):
        assert simple_trace().mean() == pytest.approx(17.5 / 30.0)

    def test_mean_empty_window_rejected(self):
        with pytest.raises(ValueError):
            simple_trace().mean(5.0, 5.0)


class TestTransforms:
    def test_window(self):
        w = simple_trace().window(5.0, 15.0)
        assert w.start == 5.0 and w.end == 15.0
        assert w.value_at(6.0) == 0.5
        assert w.value_at(12.0) == 1.0
        assert w.integrate(5.0, 15.0) == pytest.approx(0.5 * 5 + 1.0 * 5)

    def test_window_empty_rejected(self):
        with pytest.raises(ValueError):
            simple_trace().window(5.0, 5.0)

    def test_scaled(self):
        s = simple_trace().scaled(2.0)
        assert s.value_at(5.0) == 1.0

    def test_clipped(self):
        c = simple_trace().clipped(0.4, 0.6)
        assert c.value_at(15.0) == 0.6
        assert c.value_at(25.0) == 0.4

    def test_clipped_bad_range_rejected(self):
        with pytest.raises(ValueError):
            simple_trace().clipped(1.0, 0.0)
