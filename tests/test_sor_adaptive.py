"""Tests for repro.sor.adaptive — mid-run repartitioning."""

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network, SharedEthernet
from repro.core.stochastic import StochasticValue as SV
from repro.sor.adaptive import (
    simulate_adaptive_sor,
    window_load_query,
)
from repro.sor.distributed import simulate_sor
from repro.workload.traces import Trace


def dedicated_machines():
    return [Machine(f"m{i}", 1e5) for i in range(3)]


class TestWindowLoadQuery:
    def test_windowed_summary(self):
        trace = Trace.from_samples(0.0, 5.0, [0.4] * 20 + [0.8] * 20)
        machines = [Machine("m", 1e5, availability=trace)]
        query = window_load_query(machines, window_seconds=50.0)
        early = query(0, 60.0)
        late = query(0, 200.0)
        assert early.mean == pytest.approx(0.4, abs=0.05)
        assert late.mean == pytest.approx(0.8, abs=0.05)

    def test_query_before_history_uses_point(self):
        machines = [Machine("m", 1e5, availability=Trace.from_samples(100.0, 5.0, [0.5]))]
        query = window_load_query(machines, window_seconds=50.0)
        out = query(0, 100.0)
        assert out.mean == pytest.approx(0.5)


class TestAdaptiveExecution:
    def test_dedicated_equals_static(self):
        # Constant availability: re-balancing never moves a row, so the
        # adaptive run matches the plain simulation exactly.
        machines = dedicated_machines()
        net = Network()
        adaptive = simulate_adaptive_sor(machines, net, 302, 12, segment_iterations=4)
        static = simulate_sor(machines, net, 302, 12)
        assert adaptive.elapsed == pytest.approx(static.elapsed, rel=1e-9)
        assert adaptive.total_rows_moved == 0
        assert adaptive.total_redistribution_time == 0.0

    def test_segment_count(self):
        machines = dedicated_machines()
        run = simulate_adaptive_sor(machines, Network(), 302, 12, segment_iterations=5)
        assert [s.iterations for s in run.segments] == [5, 5, 2]

    def test_segments_contiguous(self):
        machines = dedicated_machines()
        run = simulate_adaptive_sor(machines, Network(), 302, 10, segment_iterations=3)
        for a, b in zip(run.segments[:-1], run.segments[1:]):
            assert b.start == pytest.approx(a.end)

    def test_rebalances_after_load_shift(self):
        # One machine collapses 15 s in: the adaptive run shifts rows
        # away from it and beats the static decomposition.
        shift = Trace.from_samples(0.0, 5.0, [1.0] * 3 + [0.08] * 400)
        machines = [
            Machine("volatile", 1e5, availability=shift),
            Machine("steady", 1e5),
        ]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1e7, latency=0.0))
        adaptive = simulate_adaptive_sor(
            machines, net, 402, 60, segment_iterations=5,
            load_query=window_load_query(machines, window_seconds=20.0),
        )
        static = simulate_sor(machines, net, 402, 60)
        assert adaptive.total_rows_moved > 0
        assert adaptive.elapsed < static.elapsed
        # Later segments give the collapsed machine fewer rows.
        assert adaptive.segments[-1].rows[0] < adaptive.segments[0].rows[0]

    def test_redistribution_time_charged(self):
        shift = Trace.from_samples(0.0, 5.0, [1.0] * 3 + [0.08] * 400)
        machines = [Machine("v", 1e5, availability=shift), Machine("s", 1e5)]
        net = Network(SharedEthernet(dedicated_bytes_per_sec=1e5, latency=0.0))
        run = simulate_adaptive_sor(
            machines, net, 402, 60, segment_iterations=5,
            load_query=window_load_query(machines, window_seconds=20.0),
        )
        assert run.total_rows_moved > 0
        assert run.total_redistribution_time > 0

    def test_custom_load_query(self):
        calls = []

        def query(index, t):
            calls.append((index, t))
            return SV.point(1.0)

        machines = dedicated_machines()
        simulate_adaptive_sor(
            machines, Network(), 302, 10, segment_iterations=5, load_query=query
        )
        # Initial balance + one re-balance, for each of 3 machines.
        assert len(calls) == 6

    def test_invalid_args_rejected(self):
        machines = dedicated_machines()
        with pytest.raises(ValueError):
            simulate_adaptive_sor(machines, Network(), 302, 10, segment_iterations=0)
        with pytest.raises(ValueError):
            simulate_adaptive_sor(machines, Network(), 302, 0)
        with pytest.raises(ValueError):
            simulate_adaptive_sor(machines, Network(), 302, 10, lam=-1.0)
