"""Property-based tests (hypothesis) for the calibration quantile sketch.

The sketch is the mergeable distribution summary every served answer
carries, so its algebra has to be *exact* where the design says exact:

* merge is a bucket-count addition — associative, commutative, and
  insert-order independent (state equality via ``==`` is bitwise on
  bucket dicts);
* quantile estimates obey the DDSketch rank-error contract: within
  ``alpha`` relative error of the true sample at the queried rank;
* :func:`build_sketches` (the vectorised serving-batch constructor) is
  state- and quantile-identical to one-at-a-time ``extend``.

The golden-trace check runs the same contract on seeded Platform 1
load traces — the data the serving layer actually sketches.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib.sketch import DEFAULT_SKETCH_ALPHA, QuantileSketch, build_sketches

finite = st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False)
positive = st.floats(1e-6, 1e9, allow_nan=False, allow_infinity=False)
alphas = st.sampled_from([0.005, 0.01, 0.05])
levels = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8)

value_lists = st.lists(finite, min_size=1, max_size=60)
positive_lists = st.lists(positive, min_size=1, max_size=60)


def _sketch(values, alpha=DEFAULT_SKETCH_ALPHA):
    return QuantileSketch(alpha).extend(np.asarray(values, dtype=float))


class TestMergeAlgebra:
    @given(value_lists, value_lists)
    def test_merge_commutative(self, xs, ys):
        ab = _sketch(xs).merge(_sketch(ys))
        ba = _sketch(ys).merge(_sketch(xs))
        assert ab == ba

    @given(value_lists, value_lists, value_lists)
    @settings(max_examples=50)
    def test_merge_associative(self, xs, ys, zs):
        left = _sketch(xs).merge(_sketch(ys)).merge(_sketch(zs))
        right = _sketch(xs).merge(_sketch(ys).merge(_sketch(zs)))
        assert left == right

    @given(value_lists, value_lists)
    def test_merge_equals_extend_on_concatenation(self, xs, ys):
        merged = _sketch(xs).merge(_sketch(ys))
        assert merged == _sketch(xs + ys)

    @given(value_lists, st.randoms(use_true_random=False))
    def test_insert_order_independent(self, xs, rnd):
        shuffled = list(xs)
        rnd.shuffle(shuffled)
        assert _sketch(shuffled) == _sketch(xs)

    @given(value_lists, st.integers(1, 5))
    def test_chunked_extend_equals_single_extend(self, xs, k):
        chunked = QuantileSketch(DEFAULT_SKETCH_ALPHA)
        for chunk in np.array_split(np.asarray(xs, dtype=float), k):
            if chunk.size:
                chunked.extend(chunk)
        assert chunked == _sketch(xs)

    @given(value_lists, value_lists)
    def test_merge_conserves_count_min_max(self, xs, ys):
        merged = _sketch(xs).merge(_sketch(ys))
        assert merged.count == len(xs) + len(ys)
        assert merged.min == min(xs + ys)
        assert merged.max == max(xs + ys)

    @given(value_lists)
    def test_serialisation_round_trip(self, xs):
        sk = _sketch(xs)
        assert QuantileSketch.from_dict(sk.to_dict()) == sk


class TestRankErrorBound:
    @given(positive_lists, alphas, st.floats(0.0, 1.0))
    @settings(max_examples=200)
    def test_quantile_within_alpha_of_rank_sample(self, xs, alpha, q):
        """DDSketch contract: the estimate is within ``alpha`` relative
        error of the true sample at rank ``floor(q * (n - 1))``."""
        sk = _sketch(xs, alpha)
        exact = float(np.sort(np.asarray(xs, dtype=float))[
            int(math.floor(q * (len(xs) - 1)))
        ])
        got = sk.quantile(q)
        assert abs(got - exact) <= alpha * abs(exact) + 1e-12

    @given(value_lists, st.floats(0.0, 1.0))
    def test_quantile_clamped_to_observed_range(self, xs, q):
        sk = _sketch(xs)
        got = sk.quantile(q)
        assert sk.min <= got <= sk.max

    @given(positive_lists)
    def test_quantile_grid_monotone(self, xs):
        sk = _sketch(xs)
        grid = sk.quantiles(np.linspace(0.0, 1.0, 21))
        assert np.all(np.diff(grid) >= 0.0)

    @given(value_lists, st.floats(-1e9, 1e9, allow_nan=False))
    def test_cdf_bounded_and_edge_exact(self, xs, x):
        sk = _sketch(xs)
        assert 0.0 <= sk.cdf(x) <= 1.0
        assert sk.cdf(sk.max) == 1.0
        assert sk.cdf(math.nextafter(sk.min, -math.inf)) == 0.0


class TestBuildSketchesEquivalence:
    @given(
        st.lists(positive_lists, min_size=1, max_size=5),
        levels,
    )
    @settings(max_examples=100)
    def test_fused_equals_per_array_extend(self, arrays, lv):
        """The vectorised batch constructor is bit-identical to the
        one-at-a-time path — state and quantile grids (ragged sizes)."""
        lv = np.asarray(sorted(lv))
        sketches, qmat = build_sketches(
            [np.asarray(a) for a in arrays], levels=lv
        )
        for a, sk, qrow in zip(arrays, sketches, qmat):
            ref = _sketch(a)
            assert sk == ref
            refq = ref.quantiles(lv)
            assert all(x == y for x, y in zip(qrow, refq))

    @given(st.lists(positive, min_size=1, max_size=40), st.integers(2, 5), levels)
    @settings(max_examples=100)
    def test_fused_equal_size_path(self, xs, k, lv):
        """Same guarantee on the equal-length fast path serving hits."""
        lv = np.asarray(sorted(lv))
        arrays = [np.asarray(xs, dtype=float) * (1.0 + 0.1 * i) for i in range(k)]
        sketches, qmat = build_sketches(arrays, levels=lv)
        for a, sk, qrow in zip(arrays, sketches, qmat):
            ref = _sketch(a)
            assert sk == ref
            refq = ref.quantiles(lv)
            assert all(x == y for x, y in zip(qrow, refq))

    @given(st.lists(value_lists, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_fused_general_fallback(self, arrays):
        """Zero/negative values route through the general insert and
        still match per-array extend exactly."""
        sketches = build_sketches([np.asarray(a) for a in arrays])
        for a, sk in zip(arrays, sketches):
            assert sk == _sketch(a)

    @given(positive_lists)
    def test_lazy_sketches_merge_like_materialised(self, xs):
        half = max(1, len(xs) // 2)
        a, b = xs[:half], xs[half:] or [1.0]
        (s1, s2), _ = build_sketches(
            [np.asarray(a), np.asarray(b)], levels=np.asarray([0.5])
        )
        assert QuantileSketch(DEFAULT_SKETCH_ALPHA).merge(s1).merge(s2) == _sketch(a + b)

    def test_rejects_non_finite(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                build_sketches([np.asarray([1.0, bad])])

    def test_rejects_empty_member(self):
        with pytest.raises(ValueError):
            build_sketches([np.asarray([1.0]), np.asarray([])])


class TestGoldenTraces:
    """The rank-error contract on the data serving actually sketches."""

    @pytest.fixture(scope="class")
    def trace_values(self):
        from repro.workload.platforms import platform1

        plat = platform1(duration=600.0, rng=11)
        return [
            np.asarray(m.availability.window(0.0, 600.0).values, dtype=float)
            for m in plat.machines
        ]

    def test_sketch_vs_exact_on_platform_traces(self, trace_values):
        lv = np.linspace(0.01, 0.99, 25)
        for series in trace_values:
            assert series.size > 10
            sk = QuantileSketch(DEFAULT_SKETCH_ALPHA).extend(series)
            exact = np.sort(series)[
                np.floor(lv * (series.size - 1)).astype(int)
            ]
            got = sk.quantiles(lv)
            assert np.all(
                np.abs(got - exact) <= DEFAULT_SKETCH_ALPHA * np.abs(exact) + 1e-12
            )

    def test_batch_constructor_on_platform_traces(self, trace_values):
        lv = np.linspace(0.05, 0.95, 10)
        sketches, qmat = build_sketches(trace_values, levels=lv)
        for series, sk, qrow in zip(trace_values, sketches, qmat):
            ref = QuantileSketch(DEFAULT_SKETCH_ALPHA).extend(series)
            assert sk == ref
            assert all(x == y for x, y in zip(qrow, ref.quantiles(lv)))
