"""Tests for repro.workload network traces, benchmarks, and platforms."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.workload.benchmarks import (
    benchmark_value,
    dedicated_sort_runtimes,
    measure_sor_element_time,
    time_sort,
)
from repro.workload.network import (
    ETHERNET_10MBIT_BYTES_PER_SEC,
    bandwidth_availability_trace,
    figure3_bandwidth_samples,
)
from repro.workload.platforms import (
    MACHINE_RATES,
    dedicated_platform,
    make_machine,
    platform1,
    platform2,
)


class TestBandwidthTraces:
    def test_ethernet_constant(self):
        assert ETHERNET_10MBIT_BYTES_PER_SEC == pytest.approx(1.25e6)

    def test_availability_bounds(self):
        t = bandwidth_availability_trace(3600.0, rng=0)
        assert t.values.min() >= 0.05
        assert t.values.max() <= 1.0

    def test_availability_mean_near_target(self):
        t = bandwidth_availability_trace(50_000.0, mean_avail=0.55, rng=1)
        assert t.values.mean() == pytest.approx(0.53, abs=0.05)

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_availability_trace(100.0, mean_avail=0.0)

    def test_figure3_statistics(self):
        s = figure3_bandwidth_samples(30_000, rng=2)
        assert s.mean() == pytest.approx(5.25, abs=0.15)
        assert s.max() <= 6.1
        assert np.median(s) > s.mean()  # long left tail


class TestBenchmarks:
    def test_dedicated_sort_runtimes_shape(self):
        s = dedicated_sort_runtimes(2000, rng=0)
        assert s.mean() == pytest.approx(11.0, abs=0.2)
        assert s.std() == pytest.approx(11.0 * 0.125, rel=0.1)
        assert s.min() > 0

    def test_dedicated_sort_runtimes_seeded(self):
        np.testing.assert_array_equal(
            dedicated_sort_runtimes(10, rng=3), dedicated_sort_runtimes(10, rng=3)
        )

    def test_dedicated_sort_invalid_count(self):
        with pytest.raises(ValueError):
            dedicated_sort_runtimes(0)

    def test_time_sort_returns_positive_times(self):
        times = time_sort(10_000, repeats=3, rng=0)
        assert times.shape == (3,)
        assert np.all(times > 0)

    def test_time_sort_invalid_args(self):
        with pytest.raises(ValueError):
            time_sort(0)
        with pytest.raises(ValueError):
            time_sort(10, repeats=0)

    def test_measure_sor_element_time_positive(self):
        t = measure_sor_element_time(n=100, iterations=2)
        assert 0 < t < 1e-3  # well under a millisecond per element

    def test_benchmark_value(self):
        sv = benchmark_value([10.0, 12.0, 11.0])
        assert isinstance(sv, StochasticValue)
        assert sv.mean == pytest.approx(11.0)


class TestPlatforms:
    def test_make_machine_kinds(self):
        for kind, rate in MACHINE_RATES.items():
            m = make_machine(kind)
            assert m.elements_per_sec == rate
            assert m.benchmark_time == pytest.approx(1.0 / rate)

    def test_make_machine_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown machine kind"):
            make_machine("cray")

    def test_platform1_composition(self):
        p = platform1(rng=0)
        assert p.names == ("sparc2-a", "sparc2-b", "sparc5", "sparc10")
        assert p.slowest_index() == 0

    def test_platform1_slow_machines_in_center_mode(self):
        p = platform1(rng=1)
        for i in (0, 1):
            mean = p.machines[i].availability.values.mean()
            assert mean == pytest.approx(0.48, abs=0.03)

    def test_platform2_composition(self):
        p = platform2(rng=2)
        assert p.names == ("sparc5", "sparc10", "ultra-1", "ultra-2")
        assert len(p.load_model.modes) == 4

    def test_platform2_traces_are_bursty(self):
        p = platform2(duration=3600.0, rng=3)
        vals = p.machines[0].availability.values
        assert vals.std() > 0.08

    def test_dedicated_platform_full_availability(self):
        p = dedicated_platform()
        for m in p.machines:
            assert m.availability.value_at(12345.0) == 1.0

    def test_platforms_deterministic(self):
        a = platform1(rng=7)
        b = platform1(rng=7)
        np.testing.assert_array_equal(
            a.machines[0].availability.values, b.machines[0].availability.values
        )

    def test_machines_have_unique_names(self):
        p = platform2(rng=4)
        names = [m.name for m in p.machines]
        assert len(set(names)) == len(names)
