"""Tests for repro.obs — the deterministic tracing layer itself."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    STAGE_CLUSTER,
    STAGE_NWS,
    STAGE_SERVING,
    STAGES,
    NullTracer,
    Tracer,
    as_tracer,
    trace_to_chrome,
    trace_to_dict,
    write_chrome,
    write_json,
)


class TestSpanLifecycle:
    def test_ids_are_counters_in_start_order(self):
        tr = Tracer()
        a = tr.start_span("a", 1.0, stage=STAGE_NWS)
        b = tr.start_span("b", 2.0, stage=STAGE_NWS)
        assert (a.span_id, b.span_id) == (1, 2)
        assert (a.trace_id, b.trace_id) == (1, 2)  # both roots

    def test_finish_is_idempotent_and_defaults_to_instant(self):
        tr = Tracer()
        sp = tr.start_span("a", 5.0, stage=STAGE_NWS)
        sp.finish()
        assert sp.end == 5.0 and sp.duration == 0.0
        sp.finish(9.0)  # second finish must not move the end
        assert sp.end == 5.0

    def test_finish_at_time_records_duration(self):
        tr = Tracer()
        sp = tr.start_span("a", 5.0, stage=STAGE_NWS).finish(7.5)
        assert sp.duration == 2.5

    def test_set_accumulates_attrs(self):
        tr = Tracer()
        sp = tr.start_span("a", 0.0, stage=STAGE_NWS, x=1)
        sp.set(y=2).set(x=3)
        assert sp.attrs == {"x": 3, "y": 2}


class TestParenting:
    def test_context_manager_nests_and_shares_trace_id(self):
        tr = Tracer()
        with tr.span("outer", 1.0, stage=STAGE_SERVING) as outer:
            assert tr.active is outer
            inner = tr.start_span("inner", 1.5, stage=STAGE_NWS)
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert tr.active is None
        assert outer.end is not None  # auto-finished on exit

    def test_new_trace_forces_fresh_trace_id_under_a_parent(self):
        tr = Tracer()
        with tr.span("batch", 1.0, stage=STAGE_SERVING) as outer:
            child = tr.start_span("req", 1.0, stage=STAGE_SERVING, new_trace=True)
        assert child.parent_id == outer.span_id
        assert child.trace_id != outer.trace_id

    def test_default_time_inherits_parent_start(self):
        tr = Tracer()
        with tr.span("outer", 3.25, stage=STAGE_SERVING):
            inner = tr.start_span("inner", stage=STAGE_NWS)
        assert inner.start == 3.25

    def test_events_attach_to_active_span_and_flat_log(self):
        tr = Tracer()
        tr.event("global", 0.5, k="v")
        with tr.span("outer", 1.0, stage=STAGE_SERVING) as outer:
            tr.event("inner", 1.5)
        assert [e.name for e in tr.events] == ["global", "inner"]
        assert tr.events[0].span_id is None
        assert tr.events[1].span_id == outer.span_id
        assert [e.seq for e in tr.events] == [1, 2]
        assert outer.events[0].name == "inner"


class TestIntrospection:
    def test_find_filters_on_name_stage_and_attrs(self):
        tr = Tracer()
        tr.start_span("route", 0.0, stage=STAGE_CLUSTER, failover=False)
        hit = tr.start_span("route", 1.0, stage=STAGE_CLUSTER, failover=True)
        tr.start_span("route", 2.0, stage=STAGE_SERVING, failover=True)
        assert tr.find(name="route", stage=STAGE_CLUSTER, failover=True) == [hit]

    def test_stage_counts_sorted(self):
        tr = Tracer()
        tr.start_span("a", 0.0, stage=STAGE_SERVING)
        tr.start_span("b", 0.0, stage=STAGE_NWS)
        tr.start_span("c", 0.0, stage=STAGE_NWS)
        assert tr.stage_counts() == {STAGE_NWS: 2, STAGE_SERVING: 1}
        assert len(tr) == 3


class TestNullTracer:
    def test_as_tracer_maps_none_to_the_singleton(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr

    def test_null_tracer_records_nothing(self):
        nt = NullTracer()
        assert not nt.enabled
        sp = nt.start_span("a", 1.0, stage=STAGE_NWS, x=1)
        sp.set(y=2).finish(5.0)
        with nt.span("b", 2.0, stage=STAGE_NWS) as inner:
            inner.set(z=3)
        nt.event("e", 3.0)
        assert len(nt) == 0
        assert nt.spans == () and nt.events == ()
        assert nt.find(name="a") == []
        assert nt.stage_counts() == {}
        assert nt.active is None


class TestExport:
    @staticmethod
    def small_trace() -> Tracer:
        tr = Tracer()
        with tr.span("outer", 1.0, stage=STAGE_SERVING, q="fresh") as sp:
            tr.start_span("inner", 1.25, stage=STAGE_NWS, staleness=float("inf")).finish(1.5)
            tr.event("mark", 1.3, n=2)
            sp.finish(2.0)
        return tr

    def test_json_document_shape(self):
        doc = trace_to_dict(self.small_trace())
        assert doc["format"] == "repro.obs/v1"
        assert doc["summary"]["spans"] == 2
        assert doc["summary"]["stages"] == {STAGE_NWS: 1, STAGE_SERVING: 1}
        outer, inner = doc["spans"]
        assert outer["span_id"] == 1 and inner["parent_id"] == 1
        assert inner["attrs"]["staleness"] == "inf"  # sanitised, strict JSON
        json.dumps(doc)

    def test_chrome_document_shape(self):
        doc = trace_to_chrome(self.small_trace())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(meta) == 1 + len(STAGES)  # process + one thread per stage
        assert len(spans) == 2 and len(instants) == 1
        outer = next(e for e in spans if e["name"] == "outer")
        assert outer["ts"] == 1.0e6 and outer["dur"] == 1.0e6  # seconds -> us
        assert outer["args"]["q"] == "fresh"
        tids = {e["tid"] for e in spans}
        assert len(tids) == 2  # one thread per stage
        json.dumps(doc)

    def test_writers_roundtrip(self, tmp_path):
        tr = self.small_trace()
        jp = write_json(tr, tmp_path / "t.json")
        cp = write_chrome(tr, tmp_path / "t_chrome.json")
        assert json.loads(jp.read_text()) == trace_to_dict(tr)
        assert json.loads(cp.read_text()) == trace_to_chrome(tr)

    def test_export_is_reproducible(self):
        a = json.dumps(trace_to_dict(self.small_trace()), sort_keys=True)
        b = json.dumps(trace_to_dict(self.small_trace()), sort_keys=True)
        assert a == b


class TestValidation:
    def test_stage_is_required(self):
        with pytest.raises(TypeError):
            Tracer().start_span("a", 0.0)
