"""Columnar serving core: view fidelity, admission parity, path equivalence.

The struct-of-arrays hot path (:mod:`repro.serving.columnar`,
``docs/serving.md``) is only allowed to exist because it is
*observationally identical* to the scalar path.  This file is that
contract:

* **Round-trip fidelity** (hypothesis) — columnising requests/responses
  and materialising the lazy views reproduces the exact protocol
  dataclasses, field for field, including ragged sidecars.
* **Admission parity** (hypothesis) — :func:`admit_batch` returns the
  same verdicts as feeding the stream through the scalar
  :class:`~repro.serving.admission.AdmissionController` one request at
  a time, and leaves the token buckets in the same state.
* **Path equivalence** — the same seeded workload submitted per-request
  vs as one ``RequestBatch`` produces bit-identical responses from a
  server and from a cluster (values, tags, sheds, worker attribution).
* **Bugfix regressions** — heap-based delivery preserves stable
  completion order; the deadline boundary is inclusive (equal instant
  is served) on both the server path and cluster re-routing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stochastic import StochasticValue
from repro.nws.service import QUALITIES
from repro.serving.admission import AdmissionController, AdmissionPolicy
from repro.serving.columnar import (
    ADMIT,
    NO_DEADLINE,
    REASONS,
    RequestBatch,
    ResponseBatch,
    admit_batch,
)
from repro.serving.demo import demo_cluster, demo_server
from repro.serving.protocol import (
    SHED_DEADLINE,
    ErrorResponse,
    OverloadedResponse,
    PredictRequest,
    PredictResponse,
)
from repro.serving.server import ServerConfig
from repro.structural.repeaters import PrecisionTarget

CLIENTS = ("ann", "bob", "cyd", "dee")
MODELS = ("sor-600", "sor-1000", "sor-1600")
_PRECISION = PrecisionTarget.parse("p95:2%")


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def request_lists(draw, max_n=40, ragged=True):
    n = draw(st.integers(min_value=0, max_value=max_n))
    reqs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
        rel = draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=5.0)))
        overrides = {}
        precision = None
        if ragged and draw(st.booleans()):
            overrides = draw(
                st.dictionaries(
                    st.sampled_from(["n_procs", "bw_avail"]),
                    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
                    max_size=2,
                )
            )
            precision = draw(st.sampled_from([None, _PRECISION]))
        reqs.append(
            PredictRequest(
                request_id=i,
                client_id=draw(st.sampled_from(CLIENTS)),
                model=draw(st.sampled_from(MODELS)),
                submitted=t,
                deadline=None if rel is None else t + rel,
                overrides=overrides,
                precision=precision,
            )
        )
    return reqs


@st.composite
def response_lists(draw, max_n=30):
    n = draw(st.integers(min_value=0, max_value=max_n))
    out = []
    for i in range(n):
        kind = draw(st.integers(min_value=0, max_value=2))
        common = dict(
            request_id=i,
            client_id=draw(st.sampled_from(CLIENTS)),
            completed=draw(st.floats(min_value=0.0, max_value=100.0)),
            worker=draw(st.sampled_from(["", "worker-0", "worker-3"])),
        )
        if kind == 0:
            out.append(
                PredictResponse(
                    **common,
                    value=StochasticValue(
                        draw(st.floats(min_value=-5.0, max_value=5.0)),
                        draw(st.floats(min_value=0.0, max_value=3.0)),
                    ),
                    p95=draw(st.floats(min_value=0.0, max_value=10.0)),
                    quality=draw(st.sampled_from(QUALITIES)),
                    staleness=draw(st.floats(min_value=0.0, max_value=50.0)),
                    latency=draw(st.floats(min_value=0.0, max_value=5.0)),
                    batch_size=draw(st.integers(min_value=1, max_value=64)),
                    model=draw(st.sampled_from(MODELS)),
                )
            )
        elif kind == 1:
            out.append(
                OverloadedResponse(
                    **common,
                    reason=draw(
                        st.sampled_from(
                            ["queue_full", "throttled", "deadline", "unavailable"]
                        )
                    ),
                    retry_after=draw(st.floats(min_value=0.0, max_value=10.0)),
                )
            )
        else:
            out.append(ErrorResponse(**common, message=draw(st.sampled_from(
                ["", "unknown model 'x'", "bad override"]))))
    return out


# ----------------------------------------------------------------------
# Round-trip fidelity
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(reqs=request_lists())
    def test_requests_survive_columnisation_exactly(self, reqs):
        batch = RequestBatch.from_requests(reqs)
        assert len(batch) == len(reqs)
        assert batch.to_requests() == reqs
        # Lazy views are per-row, not whole-batch.
        for i in (0, len(reqs) - 1):
            if reqs:
                assert batch.request(i) == reqs[i]

    @settings(max_examples=60, deadline=None)
    @given(reqs=request_lists())
    def test_select_and_concat_preserve_views(self, reqs):
        batch = RequestBatch.from_requests(reqs)
        evens = batch.select(np.arange(0, len(batch), 2))
        odds = batch.select(np.arange(1, len(batch), 2))
        assert evens.to_requests() == reqs[::2]
        assert odds.to_requests() == reqs[1::2]
        if len(evens) and len(odds):
            both = RequestBatch.concat([evens, odds])
            assert both.to_requests() == reqs[::2] + reqs[1::2]

    @settings(max_examples=60, deadline=None)
    @given(resps=response_lists())
    def test_responses_survive_columnisation_exactly(self, resps):
        batch = ResponseBatch.from_responses(resps)
        assert batch.to_responses() == resps
        counts = batch.status_counts()
        assert counts["ok"] == sum(1 for r in resps if r.status == "ok")
        assert counts["overloaded"] == sum(
            1 for r in resps if r.status == "overloaded"
        )
        assert counts["error"] == sum(1 for r in resps if r.status == "error")

    def test_no_deadline_encodes_as_inf(self):
        req = PredictRequest(request_id=1, client_id="ann", model="m", submitted=3.0)
        batch = RequestBatch.from_requests([req])
        assert batch.deadline[0] == NO_DEADLINE
        assert batch.request(0).deadline is None

    def test_rich_response_blocks_ride_verbatim(self):
        # precision / distribution / failover blocks don't columnise;
        # the view must hand back the original object untouched.
        rich = PredictResponse(
            request_id=9,
            client_id="ann",
            completed=4.0,
            value=StochasticValue(1.0, 0.2),
            p95=1.5,
            failover=True,
            quality="stale",
            model="sor-600",
        )
        batch = ResponseBatch.from_responses([rich])
        assert batch.response(0) is rich
        stamped = batch.with_worker("worker-7")
        assert stamped.response(0).worker == "worker-7"
        assert stamped.response(0).failover is True


# ----------------------------------------------------------------------
# Vectorised admission parity
# ----------------------------------------------------------------------
class TestAdmissionParity:
    @settings(max_examples=80, deadline=None)
    @given(
        reqs=request_lists(ragged=False),
        max_queue=st.integers(min_value=1, max_value=12),
        rate=st.sampled_from([0.0, 0.5, 1.0, 3.0]),
        burst=st.floats(min_value=1.0, max_value=4.0),
        queue_depth=st.integers(min_value=0, max_value=6),
        clock=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_verdicts_and_buckets_match_scalar_controller(
        self, reqs, max_queue, rate, burst, queue_depth, clock
    ):
        policy = AdmissionPolicy(
            max_queue=max_queue, client_rate=rate, client_burst=burst
        )
        scalar = AdmissionController(policy)
        vector = AdmissionController(policy)

        depth = queue_depth
        expected = []
        for r in reqs:
            reason = scalar.admit(r.client_id, depth, max(r.submitted, clock))
            expected.append(ADMIT if reason is None else REASONS.index(reason))
            if reason is None:
                depth += 1

        batch = RequestBatch.from_requests(reqs)
        verdicts = admit_batch(vector, batch, queue_depth, clock)
        assert verdicts.tolist() == expected

        # Not just the verdicts: the buckets left behind must be the
        # same buckets, so the *next* batch decides identically too.
        assert set(scalar._buckets) == set(vector._buckets)
        for cid, b in scalar._buckets.items():
            v = vector._buckets[cid]
            assert (b._tokens, b._anchor) == (v._tokens, v._anchor), cid

    @settings(max_examples=30, deadline=None)
    @given(
        streams=st.lists(request_lists(max_n=12, ragged=False), max_size=4),
        clock=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_parity_holds_across_consecutive_batches(self, streams, clock):
        policy = AdmissionPolicy(max_queue=8, client_rate=1.0, client_burst=2.0)
        scalar = AdmissionController(policy)
        vector = AdmissionController(policy)
        depth_s = depth_v = 0
        for reqs in streams:
            expected = []
            for r in reqs:
                reason = scalar.admit(r.client_id, depth_s, max(r.submitted, clock))
                expected.append(ADMIT if reason is None else REASONS.index(reason))
                if reason is None:
                    depth_s += 1
            batch = RequestBatch.from_requests(reqs)
            verdicts = admit_batch(vector, batch, depth_v, clock)
            depth_v += int(np.count_nonzero(verdicts == ADMIT))
            assert verdicts.tolist() == expected
        assert depth_s == depth_v


# ----------------------------------------------------------------------
# Path equivalence: scalar vs columnar, server and cluster
# ----------------------------------------------------------------------
def _mixed_requests(models, n=240, t0=0.0):
    """A deterministic stream exercising every admission outcome."""
    reqs = []
    for i in range(n):
        t = t0 + 0.01 * i
        deadline = None
        if i % 7 == 3:
            deadline = t + 0.05  # tight: some will expire in queue
        elif i % 7 == 5:
            deadline = t + 30.0
        reqs.append(
            PredictRequest(
                request_id=i,
                client_id=CLIENTS[i % len(CLIENTS)],
                model=models[i % len(models)],
                submitted=t,
                deadline=deadline,
            )
        )
    return reqs


def _equivalence_config():
    return ServerConfig(
        n_samples=32,
        batch_max=16,
        admission=AdmissionPolicy(max_queue=48, client_rate=40.0, client_burst=4.0),
    )


class TestPathEquivalence:
    def test_server_columnar_answers_bit_identical(self):
        s_scalar, _, _ = demo_server(config=_equivalence_config(), rng=5)
        s_columnar, _, _ = demo_server(config=_equivalence_config(), rng=5)
        assert s_columnar.columnar_fast_path
        reqs = _mixed_requests(s_scalar.models)

        out_scalar = []
        for r in reqs:
            immediate = s_scalar.submit(r)
            if immediate is not None:
                out_scalar.append(immediate)
        out_scalar += list(s_scalar.step(120.0))

        batch = RequestBatch.from_requests(reqs)
        rb = s_columnar.submit_batch(batch)
        out_columnar = rb.to_responses() + s_columnar.step_batch(120.0).to_responses()

        by_id_s = {r.request_id: r for r in out_scalar}
        by_id_c = {r.request_id: r for r in out_columnar}
        assert set(by_id_s) == set(by_id_c) == {r.request_id for r in reqs}
        for rid in by_id_s:
            assert by_id_s[rid] == by_id_c[rid]

        # Headline metrics agree too (the dashboards must not notice).
        ms = s_scalar.metrics.snapshot()["counters"]
        mc = s_columnar.metrics.snapshot()["counters"]
        for key in ("requests_total", "responses_ok", "shed_total", "errors_total"):
            assert ms.get(key, 0) == mc.get(key, 0), key

    def test_cluster_columnar_answers_bit_identical(self):
        c_scalar, _, _ = demo_cluster(rng=5)
        c_columnar, _, _ = demo_cluster(rng=5)
        assert c_columnar.columnar_fast_path
        reqs = _mixed_requests(c_scalar.models, n=200)

        out_scalar = []
        for r in reqs:
            immediate = c_scalar.submit(r)
            if immediate is not None:
                out_scalar.append(immediate)
        out_scalar += list(c_scalar.step(120.0))

        batch = RequestBatch.from_requests(reqs)
        rb = c_columnar.submit_batch(batch)
        out_columnar = rb.to_responses() + c_columnar.step_batch(120.0).to_responses()

        by_id_s = {r.request_id: r for r in out_scalar}
        by_id_c = {r.request_id: r for r in out_columnar}
        assert set(by_id_s) == set(by_id_c) == {r.request_id for r in reqs}
        for rid in by_id_s:
            # Includes worker attribution: views must carry the shard
            # owner's name exactly as the scalar path stamps it.
            assert by_id_s[rid] == by_id_c[rid]

    def test_ragged_rows_fall_back_to_scalar_path(self):
        # Overrides/precision don't vectorise; submit_batch must split
        # them off and answer them exactly like scalar submissions.
        s_scalar, _, _ = demo_server(config=_equivalence_config(), rng=5)
        s_columnar, _, _ = demo_server(config=_equivalence_config(), rng=5)
        reqs = _mixed_requests(s_scalar.models, n=40)
        ragged = [
            PredictRequest(
                request_id=1000 + i,
                client_id=CLIENTS[i % len(CLIENTS)],
                model=s_scalar.models[0],
                submitted=0.005 + 0.01 * i,
                overrides={"n_procs": 4.0},
            )
            for i in range(5)
        ]
        merged = sorted(reqs + ragged, key=lambda r: r.submitted)

        out_scalar = []
        for r in merged:
            immediate = s_scalar.submit(r)
            if immediate is not None:
                out_scalar.append(immediate)
        out_scalar += list(s_scalar.step(120.0))

        rb = s_columnar.submit_batch(RequestBatch.from_requests(merged))
        out_columnar = rb.to_responses() + s_columnar.step_batch(120.0).to_responses()
        by_id_s = {r.request_id: r for r in out_scalar}
        by_id_c = {r.request_id: r for r in out_columnar}
        assert set(by_id_s) == set(by_id_c)
        for rid in by_id_s:
            assert by_id_s[rid] == by_id_c[rid]

    def test_unknown_model_errors_match_scalar_messages(self):
        s_scalar, _, _ = demo_server(rng=5)
        s_columnar, _, _ = demo_server(rng=5)
        bad = PredictRequest(
            request_id=1, client_id="ann", model="nope", submitted=0.0
        )
        scalar_resp = s_scalar.submit(bad)
        rb = s_columnar.submit_batch(RequestBatch.from_requests([bad]))
        assert rb.response(0) == scalar_resp


# ----------------------------------------------------------------------
# Bugfix regressions
# ----------------------------------------------------------------------
class TestDeliveryOrder:
    def test_heap_delivery_is_stable_completion_order(self):
        # Satellite regression for the old sort-and-rebuild delivery
        # path: responses parked out of order must come back sorted by
        # completion, ties in park order (the stable-sort contract).
        server, _, _ = demo_server(rng=5)
        t0 = server.now
        parked = []
        for i, rel in enumerate([5.0, 1.0, 3.0, 1.0, 2.0, 3.0, 0.5]):
            parked.append(
                PredictResponse(
                    request_id=i,
                    client_id="ann",
                    completed=t0 + rel,
                    value=StochasticValue(1.0, 0.1),
                    p95=1.0,
                    model=server.models[0],
                )
            )
        server._finish(parked)
        early = server.step(t0 + 2.0)
        late = server.step(t0 + 10.0)
        delivered = early + late
        assert [r.completed - t0 for r in early] == [0.5, 1.0, 1.0, 2.0]
        expected = sorted(parked, key=lambda r: r.completed)  # stable
        assert delivered == expected

    def test_drive_delivers_in_nondecreasing_completion_order(self):
        server, _, _ = demo_server(rng=7)
        t0 = server.now
        reqs = _mixed_requests(server.models, n=120, t0=t0)
        for r in reqs:
            server.submit(r)
        seen = []
        for to in np.arange(t0 + 0.05, t0 + 10.0, 0.05):
            step = server.step(float(to))
            assert all(r.completed <= to for r in step)
            seen.extend(step)
        assert [r.completed for r in seen] == sorted(r.completed for r in seen)


class TestDeadlineBoundary:
    def test_server_serves_deadline_equal_to_service_start(self):
        # With default timing, request A (model 0) occupies the server
        # until service_time(1) = 0.005; request B (model 1) then starts
        # at exactly t = 0.005.  deadline == start must serve.
        server, _, _ = demo_server(rng=5)
        t0 = server.now
        start = t0 + server.config.service_time(1)
        a = PredictRequest(request_id=0, client_id="ann",
                           model=server.models[0], submitted=t0)
        b = PredictRequest(request_id=1, client_id="bob",
                           model=server.models[1], submitted=t0, deadline=start)
        server.submit(a)
        server.submit(b)
        responses = {r.request_id: r for r in server.step(t0 + 10.0)}
        assert responses[1].status == "ok"

    def test_server_sheds_deadline_strictly_before_service_start(self):
        server, _, _ = demo_server(rng=5)
        t0 = server.now
        start = t0 + server.config.service_time(1)
        a = PredictRequest(request_id=0, client_id="ann",
                           model=server.models[0], submitted=t0)
        b = PredictRequest(request_id=1, client_id="bob",
                           model=server.models[1], submitted=t0,
                           deadline=start - 1e-4)
        server.submit(a)
        server.submit(b)
        responses = {r.request_id: r for r in server.step(t0 + 10.0)}
        assert responses[1].status == "overloaded"
        assert responses[1].reason == SHED_DEADLINE

    def test_columnar_queue_uses_the_same_boundary(self):
        server, _, _ = demo_server(rng=5)
        t0 = server.now
        start = t0 + server.config.service_time(1)
        reqs = [
            PredictRequest(request_id=0, client_id="ann",
                           model=server.models[0], submitted=t0),
            PredictRequest(request_id=1, client_id="bob",
                           model=server.models[1], submitted=t0, deadline=start),
            PredictRequest(request_id=2, client_id="cyd",
                           model=server.models[2], submitted=t0,
                           deadline=start - 1e-4),
        ]
        server.submit_batch(RequestBatch.from_requests(reqs))
        out = {r.request_id: r for r in server.step_batch(t0 + 10.0).to_responses()}
        assert out[1].status == "ok"
        assert out[2].status == "overloaded" and out[2].reason == SHED_DEADLINE

    def test_cluster_requeue_uses_the_same_boundary(self):
        # Satellite regression: before the sweep, in-flight migration
        # shed `deadline <= t` while worker-side shedding used
        # `deadline < t`, so the same trace shed different requests
        # depending on whether a crash happened to move it.
        cluster, _, _ = demo_cluster(rng=5)
        healthy = set(cluster.workers)

        served = PredictRequest(request_id=1, client_id="ann",
                                model=cluster.models[0], submitted=0.0,
                                deadline=50.0)
        cluster.submit(served)
        out: list = []
        key = ("ann", 1)
        assert key in cluster._inflight
        requeued, shed = cluster._requeue([key], 50.0, healthy, out)
        assert (requeued, shed) == (1, 0)
        assert not any(r.status == "overloaded" for r in out)

        dead = PredictRequest(request_id=2, client_id="bob",
                              model=cluster.models[0], submitted=0.0,
                              deadline=50.0)
        cluster.submit(dead)
        out = []
        key = ("bob", 2)
        requeued, shed = cluster._requeue([key], 50.0 + 1e-9, healthy, out)
        assert (requeued, shed) == (0, 1)
        assert out[0].status == "overloaded"
        assert out[0].reason == SHED_DEADLINE
