"""Tests for the memory-boundary experiment and paging simulation."""

import pytest

from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.experiments.memory import run_memory_limit_study
from repro.sor.distributed import simulate_sor


class TestPagingSimulation:
    def test_paging_rejected_by_default(self):
        machines = [Machine("tiny", 1e5, memory_elements=100.0)]
        with pytest.raises(ValueError, match="does not fit"):
            simulate_sor(machines, Network(), 100, 1)

    def test_allow_paging_applies_penalty(self):
        machines = [Machine("tiny", 1e5, memory_elements=100.0)]
        paged = simulate_sor(
            machines, Network(), 100, 1, allow_paging=True, paging_penalty=10.0
        )
        fit = simulate_sor(
            [Machine("big", 1e5)], Network(), 100, 1
        )
        assert paged.elapsed == pytest.approx(10.0 * fit.elapsed, rel=0.01)

    def test_in_core_machines_unaffected_by_flag(self):
        machines = [Machine("big", 1e5)]
        a = simulate_sor(machines, Network(), 100, 2)
        b = simulate_sor(machines, Network(), 100, 2, allow_paging=True)
        assert a.elapsed == b.elapsed

    def test_invalid_penalty_rejected(self):
        machines = [Machine("m", 1e5)]
        with pytest.raises(ValueError):
            simulate_sor(machines, Network(), 100, 1, allow_paging=True, paging_penalty=0.5)


class TestMemoryStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_memory_limit_study(sizes=(600, 1000, 1400))

    def test_straddles_boundary(self, rows):
        assert any(r.in_core for r in rows)
        assert any(not r.in_core for r in rows)

    def test_in_core_accuracy(self, rows):
        for r in rows:
            if r.in_core:
                assert r.naive_error < 0.02

    def test_out_of_core_naive_model_collapses(self, rows):
        for r in rows:
            if not r.in_core:
                assert r.naive_error > 0.5

    def test_paging_aware_model_recovers(self, rows):
        for r in rows:
            assert r.aware_error < 0.05

    def test_thrashing_visible_in_actual_times(self, rows):
        in_core = max(r.actual for r in rows if r.in_core)
        out = min(r.actual for r in rows if not r.in_core)
        assert out > 5 * in_core
