"""Unit tests for the online calibration scorer and recalibrator.

Covers the three layers of :mod:`repro.calib.scorer`:

* :func:`score_pairs` / :class:`CalibrationReport` — the batch API the
  NWS evaluation layer re-exports;
* :class:`ModelScore` — streaming CRPS/PIT/coverage state, the
  vectorised ``ingest_many`` path, and worker merge;
* :class:`CalibrationScorer` — the keyed model/cohort registry;

plus the conformal control law in :mod:`repro.calib.recalibrate`:
widen below the SLO band, shrink above it, flag for re-fit when the
required scale exceeds the honest maximum.
"""

import numpy as np
import pytest

from repro.calib.distribution import DistributionInfo
from repro.calib.recalibrate import (
    REASON_REFIT,
    REASON_SHRINK,
    REASON_WIDEN,
    RecalibrationPolicy,
    Recalibrator,
)
from repro.calib.scorer import (
    DEFAULT_WINDOW,
    PIT_BINS,
    CalibrationScorer,
    ModelScore,
    score_pairs,
)
from repro.core.normal import TWO_SIGMA_COVERAGE
from repro.core.stochastic import StochasticValue


def _dist(mean=10.0, sigma=1.0, n=200, seed=0):
    rng = np.random.default_rng(seed)
    return DistributionInfo.from_samples(mean + sigma * rng.standard_normal(n))


def _score_one(dist, outcome):
    """The exact per-pair arithmetic ``ModelScore.observe`` performs."""
    covered = dist.contains(outcome)
    crps = dist.crps(outcome)
    pit = dist.pit(outcome)
    sigma_base = max(dist.std / dist.scale, 1e-12)
    z = abs(outcome - dist.mean) / sigma_base
    return covered, crps, pit, z


class TestScorePairs:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            score_pairs([])

    def test_known_batch(self):
        pairs = [
            (StochasticValue(10.0, 2.0), 11.0),  # inside mean +- spread
            (StochasticValue(10.0, 2.0), 15.0),  # outside
        ]
        rep = score_pairs(pairs)
        assert rep.n == 2
        assert rep.coverage == 0.5
        assert rep.nominal == TWO_SIGMA_COVERAGE
        assert rep.mae == pytest.approx((1.0 + 5.0) / 2.0)
        assert rep.sharpness == pytest.approx((4.0 / 11.0 + 4.0 / 15.0) / 2.0)

    def test_calibration_gap_sign(self):
        perfect = score_pairs([(StochasticValue(0.0, 1.0), 0.0)])
        assert perfect.calibration_gap == pytest.approx(1.0 - TWO_SIGMA_COVERAGE)
        missed = score_pairs([(StochasticValue(0.0, 1.0), 9.0)])
        assert missed.calibration_gap < 0.0

    def test_summary_is_one_line(self):
        rep = score_pairs([(StochasticValue(1.0, 1.0), 1.0)])
        text = rep.summary()
        assert "\n" not in text
        assert "coverage" in text and "n=1" in text


class TestModelScore:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModelScore("m", nominal=0.0)
        with pytest.raises(ValueError):
            ModelScore("m", nominal=1.0)
        with pytest.raises(ValueError):
            ModelScore("m", window=1)

    def test_observe_returns_coverage_and_updates_state(self):
        sc = ModelScore("m")
        d = _dist()
        inside = d.mean + 0.5 * d.std
        outside = d.mean + 5.0 * d.std
        assert sc.observe(d, inside) is True
        assert sc.observe(d, outside) is False
        assert sc.n == 2
        assert sc.covered_n == 1
        assert sc.coverage == 0.5
        assert sc.mae == pytest.approx((0.5 * d.std + 5.0 * d.std) / 2.0)
        assert sc.rolling_n == 2

    def test_z_uses_prerecalibration_sigma(self):
        """Widening the served claim must not shrink the recorded z:
        the recalibrator solves for an absolute scale, not a relative one."""
        raw = _dist()
        wide = raw.widened(2.0)
        outcome = raw.mean + 3.0 * raw.std
        raw_score, wide_score = ModelScore("a"), ModelScore("b")
        raw_score.observe(raw, outcome)
        wide_score.observe(wide, outcome)
        assert wide_score.z_quantile(1.0) == pytest.approx(
            raw_score.z_quantile(1.0)
        )
        assert raw_score.z_quantile(1.0) == pytest.approx(3.0)

    def test_rolling_window_bounded(self):
        sc = ModelScore("m", window=4)
        d = _dist()
        for i in range(10):
            sc.observe(d, d.mean + (5.0 if i < 6 else 0.0) * d.std)
        assert sc.rolling_n == 4
        assert sc.n == 10
        # Window holds only the last four (covered) observations.
        assert sc.rolling_coverage == 1.0
        assert sc.coverage == pytest.approx(0.4)

    def test_pit_histogram_sums_to_one(self):
        sc = ModelScore("m")
        d = _dist()
        for outcome in np.linspace(d.mean - 3 * d.std, d.mean + 3 * d.std, 17):
            sc.observe(d, float(outcome))
        hist = sc.pit_histogram()
        assert len(hist) == PIT_BINS
        assert sum(hist) == pytest.approx(1.0)

    def test_empty_views(self):
        sc = ModelScore("m")
        assert sc.coverage == 0.0
        assert sc.rolling_coverage == 0.0
        assert sc.mean_crps == 0.0
        assert sc.last_crps == 0.0
        assert sc.pit_histogram() == [0.0] * PIT_BINS
        with pytest.raises(ValueError):
            sc.z_quantile(0.5)
        with pytest.raises(ValueError):
            sc.report()

    def test_z_quantile_is_conservative_order_statistic(self):
        sc = ModelScore("m")
        d = _dist(mean=0.0, sigma=1.0)
        for z in (1.0, 2.0, 3.0, 4.0):
            sc.observe(d, d.mean + z * d.std)
        # method="higher": rank 0.5 * 3 = 1.5 rounds up to index 2.
        assert sc.z_quantile(0.5) == pytest.approx(3.0)
        assert sc.z_quantile(0.0) == pytest.approx(1.0)
        assert sc.z_quantile(1.0) == pytest.approx(4.0)

    def test_report_matches_cumulative_state(self):
        sc = ModelScore("m")
        d = _dist()
        for outcome in (d.mean, d.mean + 3 * d.std):
            sc.observe(d, outcome)
        rep = sc.report()
        assert rep.n == 2
        assert rep.coverage == sc.coverage
        assert rep.mae == sc.mae
        assert rep.sharpness == sc.sharpness
        assert rep.nominal == sc.nominal


class TestIngestMany:
    def test_matches_sequential_observe(self):
        dists = [_dist(mean=5.0 + i, sigma=0.5 + 0.1 * i, seed=i) for i in range(6)]
        outcomes = [d.mean + (i - 2.5) * d.std for i, d in enumerate(dists)]

        seq = ModelScore("m", window=4)
        for d, y in zip(dists, outcomes):
            seq.observe(d, y)

        scored = [_score_one(d, y) for d, y in zip(dists, outcomes)]
        covered = np.asarray([s[0] for s in scored], dtype=bool)
        crps = np.asarray([s[1] for s in scored])
        pit_bins = np.asarray(
            [min(int(s[2] * PIT_BINS), PIT_BINS - 1) for s in scored]
        )
        z = np.asarray([s[3] for s in scored])
        mae = np.asarray([abs(y - d.mean) for d, y in zip(dists, outcomes)])
        sharp = np.asarray(
            [2.0 * d.spread / max(abs(y), 1e-12) for d, y in zip(dists, outcomes)]
        )
        batch = ModelScore("m", window=4)
        batch.ingest_many(covered, crps, pit_bins, z, mae, sharp)

        assert batch.n == seq.n
        assert batch.covered_n == seq.covered_n
        assert batch.pit_counts == seq.pit_counts
        # Totals use pairwise summation: equal to within float noise.
        assert batch.crps_total == pytest.approx(seq.crps_total, rel=1e-12)
        assert batch.mae_total == pytest.approx(seq.mae_total, rel=1e-12)
        assert batch.sharp_total == pytest.approx(seq.sharp_total, rel=1e-12)
        # Rolling windows are order-exact (newest `window` entries).
        assert list(batch._cover_win) == list(seq._cover_win)
        assert list(batch._crps_win) == list(seq._crps_win)
        assert list(batch._z_win) == list(seq._z_win)


class TestMerge:
    def _filled(self, key, seed, n, window=5):
        sc = ModelScore(key, window=window)
        d = _dist(seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(n):
            sc.observe(d, d.mean + float(rng.normal(0.0, 1.5)) * d.std)
        return sc

    def test_totals_add_and_windows_keep_newest(self):
        a = self._filled("m", seed=1, n=4)
        b = self._filled("m", seed=2, n=7)
        a_n, a_cov, a_crps = a.n, a.covered_n, a.crps_total
        b_windows = (list(b._cover_win), list(b._crps_win), list(b._z_win))
        merged = a.merge(b)
        assert merged is a
        assert a.n == a_n + b.n
        assert a.covered_n == a_cov + b.covered_n
        assert a.crps_total == pytest.approx(a_crps + b.crps_total)
        # b contributed >= window entries, so the merged windows are
        # exactly b's newest `window` entries.
        assert list(a._cover_win) == b_windows[0][-5:]
        assert list(a._crps_win) == b_windows[1][-5:]
        assert list(a._z_win) == b_windows[2][-5:]

    def test_merge_rejects_mismatched_key_or_nominal(self):
        with pytest.raises(ValueError):
            ModelScore("a").merge(ModelScore("b"))
        with pytest.raises(ValueError):
            ModelScore("a", nominal=0.95).merge(ModelScore("a", nominal=0.9))


class TestCalibrationScorer:
    def test_observe_updates_model_and_cohort_identically(self):
        scorer = CalibrationScorer()
        d = _dist()
        scorer.observe("m1", "fresh", d, d.mean + 0.1)
        scorer.observe("m1", "stale", d, d.mean + 9.0 * d.std)
        scorer.observe("m2", "fresh", d, d.mean)
        assert scorer.n == 3
        assert scorer.score("m1").n == 2
        assert scorer.score("m2").n == 1
        assert scorer.cohort("fresh").n == 2
        assert scorer.cohort("stale").n == 1
        assert scorer.cohort("stale").coverage == 0.0

    def test_observe_scored_matches_observe(self):
        d = _dist()
        outcome = d.mean + 1.7 * d.std
        direct, external = CalibrationScorer(), CalibrationScorer()
        direct.observe("m", "fresh", d, outcome)
        covered, crps, pit, z = _score_one(d, outcome)
        external.observe_scored(
            "m", "fresh", d, outcome, covered=covered, crps=crps, pit=pit, z=z
        )
        assert direct.summary() == external.summary()

    def test_summary_shape(self):
        scorer = CalibrationScorer()
        d = _dist()
        scorer.observe("m", "fresh", d, d.mean)
        doc = scorer.summary()
        assert set(doc) == {"n", "nominal", "models", "cohorts"}
        assert set(doc["models"]) == {"m"}
        assert set(doc["cohorts"]) == {"fresh"}
        assert doc["models"]["m"]["n"] == 1
        assert len(doc["models"]["m"]["pit"]) == PIT_BINS

    def test_merged_unions_workers(self):
        d = _dist()
        w1, w2 = CalibrationScorer(), CalibrationScorer()
        w1.observe("shared", "fresh", d, d.mean)
        w1.observe("only1", "fresh", d, d.mean + 9 * d.std)
        w2.observe("shared", "stale", d, d.mean + 0.5 * d.std)
        merged = CalibrationScorer.merged([w1, None, w2])
        assert merged.n == 3
        assert merged.score("shared").n == 2
        assert merged.score("only1").n == 1
        assert merged.cohort("fresh").n == 2
        assert merged.cohort("stale").n == 1
        # Merging must not mutate the source workers.
        assert w1.score("shared").n == 1 and w2.score("shared").n == 1

    def test_merged_requires_a_scorer(self):
        with pytest.raises(ValueError):
            CalibrationScorer.merged([None])


class TestRecalibrator:
    POLICY = RecalibrationPolicy(
        control_interval=10, min_observations=10, window=DEFAULT_WINDOW
    )

    def _drive(self, recal, score, dist, z_values, model="m"):
        """Feed outcomes at the given base z offsets, running the control
        check after every observation exactly as the serving loop does."""
        events = []
        for z in z_values:
            score.observe(dist, dist.mean + z * dist.std)
            ev = recal.control(model, score)
            if ev is not None:
                events.append(ev)
        return events

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecalibrationPolicy(slo_low=0.97, nominal=0.95)
        with pytest.raises(ValueError):
            RecalibrationPolicy(slo_high=0.5)
        with pytest.raises(ValueError):
            RecalibrationPolicy(max_scale=1.0)
        with pytest.raises(ValueError):
            RecalibrationPolicy(control_interval=0)

    def test_initial_scale(self):
        assert Recalibrator().scale("any") == 1.0
        assert Recalibrator(initial_scale=1.5).scale("any") == 1.5
        with pytest.raises(ValueError):
            Recalibrator(initial_scale=0.5)

    def test_no_action_before_min_observations(self):
        recal = Recalibrator(self.POLICY)
        score = ModelScore("m")
        d = _dist()
        events = self._drive(recal, score, d, [5.0] * 9)
        assert events == []
        assert recal.scale("m") == 1.0

    def test_widen_when_coverage_below_slo(self):
        recal = Recalibrator(self.POLICY)
        score = ModelScore("m")
        d = _dist()
        # Every outcome at 3 base sigma: uncovered, required scale 1.5.
        events = self._drive(recal, score, d, [3.0] * 10)
        assert len(events) == 1
        ev = events[0]
        assert ev.reason == REASON_WIDEN
        assert ev.at_observation == 10
        assert ev.old_scale == 1.0
        assert ev.new_scale == pytest.approx(1.5)
        assert ev.rolling_coverage == 0.0
        assert recal.scale("m") == pytest.approx(1.5)
        assert not recal.flagged("m")
        assert recal.events == events

    def test_control_only_at_cadence(self):
        recal = Recalibrator(self.POLICY)
        score = ModelScore("m")
        d = _dist()
        events = self._drive(recal, score, d, [3.0] * 19)
        # Only the n=10 boundary fires within 19 observations.
        assert [e.at_observation for e in events] == [10]

    def test_refit_flag_when_required_exceeds_max_scale(self):
        recal = Recalibrator(self.POLICY)
        score = ModelScore("m")
        d = _dist()
        events = self._drive(recal, score, d, [10.0] * 10)
        assert len(events) == 1
        ev = events[0]
        assert ev.reason == REASON_REFIT
        assert ev.required_scale == pytest.approx(5.0)
        assert ev.new_scale == self.POLICY.max_scale
        assert recal.flagged("m")
        assert "m" in recal.summary()["flagged"]

    def test_shrink_when_coverage_overshoots(self):
        policy = RecalibrationPolicy(control_interval=10, min_observations=10)
        recal = Recalibrator(policy)
        # Small score window so the bad z's age out of the rolling state.
        score = ModelScore("m", window=10)
        d = _dist()
        widened = self._drive(recal, score, d, [3.0] * 10)
        assert [e.reason for e in widened] == [REASON_WIDEN]
        # Ten well-covered, low-z observations flush the window:
        # rolling coverage 1.0 > slo_high and required 0.05 < scale.
        shrunk = self._drive(recal, score, d, [0.1] * 10)
        assert [e.reason for e in shrunk] == [REASON_SHRINK]
        assert shrunk[0].old_scale == pytest.approx(1.5)
        assert recal.scale("m") == pytest.approx(1.0)

    def test_scale_never_shrinks_below_one(self):
        policy = RecalibrationPolicy(control_interval=10, min_observations=10)
        recal = Recalibrator(policy, initial_scale=1.2)
        score = ModelScore("m", window=10)
        d = _dist()
        events = self._drive(recal, score, d, [0.1] * 10)
        assert [e.reason for e in events] == [REASON_SHRINK]
        assert recal.scale("m") == 1.0

    def test_summary_round_trips_events(self):
        recal = Recalibrator(self.POLICY)
        score = ModelScore("m")
        d = _dist()
        self._drive(recal, score, d, [3.0] * 10)
        doc = recal.summary()
        assert doc["scales"] == {"m": pytest.approx(1.5)}
        assert doc["flagged"] == []
        assert len(doc["events"]) == 1
        assert doc["events"][0]["reason"] == REASON_WIDEN
        assert doc["events"][0] == recal.events[0].to_dict()
