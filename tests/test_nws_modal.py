"""Tests for repro.nws.modal — Section 2.1.2 modal load characterisation."""

import numpy as np
import pytest

from repro.core.stochastic import StochasticValue
from repro.nws.modal import ModalCombination, ModalLoadCharacterizer, select_n_modes_bic
from repro.nws.sensors import Sensor
from repro.nws.service import NetworkWeatherService
from repro.workload.loadgen import bursty_trace, single_mode_trace
from repro.workload.modes import PLATFORM1_MODES, PLATFORM2_MODES
from repro.workload.traces import Trace


def bimodal(n=2000, rng=0):
    gen = np.random.default_rng(rng)
    return np.concatenate(
        [gen.normal(0.8, 0.03, int(0.6 * n)), gen.normal(0.3, 0.03, int(0.4 * n))]
    )


class TestBicSelection:
    def test_picks_two_for_bimodal(self):
        gmm = select_n_modes_bic(bimodal(), max_modes=5)
        assert gmm.n_components == 2

    def test_picks_one_for_unimodal(self):
        rng = np.random.default_rng(1)
        gmm = select_n_modes_bic(rng.normal(0.5, 0.05, 2000), max_modes=4)
        assert gmm.n_components == 1

    def test_respects_max_modes(self):
        gmm = select_n_modes_bic(bimodal(), max_modes=1)
        assert gmm.n_components == 1

    def test_invalid_max_modes_rejected(self):
        with pytest.raises(ValueError):
            select_n_modes_bic(bimodal(), max_modes=0)

    def test_small_data_caps_components(self):
        rng = np.random.default_rng(2)
        gmm = select_n_modes_bic(rng.normal(0, 1, 7), max_modes=5)
        assert gmm.n_components <= 3


class TestCharacterizer:
    def test_mixture_mean_matches_data(self):
        data = bimodal()
        sv = ModalLoadCharacterizer().characterize(data)
        assert sv.mean == pytest.approx(float(data.mean()), abs=0.02)
        assert sv.spread == pytest.approx(2.0 * float(data.std()), rel=0.1)

    def test_linear_spread_smaller_than_mixture(self):
        data = bimodal()
        mix = ModalLoadCharacterizer(combination=ModalCombination.MIXTURE).characterize(data)
        lin = ModalLoadCharacterizer(combination=ModalCombination.LINEAR).characterize(data)
        assert mix.mean == pytest.approx(lin.mean, abs=1e-6)
        assert lin.spread < mix.spread

    def test_short_history_falls_back_to_summary(self):
        data = [0.5, 0.51, 0.49, 0.52]
        sv = ModalLoadCharacterizer(min_history=30).characterize(data)
        assert sv == StochasticValue.from_samples(data)

    def test_single_value_history(self):
        sv = ModalLoadCharacterizer().characterize([0.7])
        assert sv == StochasticValue.point(0.7)

    def test_constant_history(self):
        sv = ModalLoadCharacterizer().characterize([0.5] * 100)
        assert sv.mean == pytest.approx(0.5)
        assert sv.spread == pytest.approx(0.0, abs=1e-9)

    def test_single_mode_trace_summary(self):
        trace = single_mode_trace(PLATFORM1_MODES.modes[1], 3600.0, rng=3)
        sv = ModalLoadCharacterizer().characterize(trace.values)
        assert sv.mean == pytest.approx(0.48, abs=0.03)

    def test_from_sensor_window(self):
        trace = bursty_trace(PLATFORM2_MODES, 3600.0, rng=4)
        sensor = Sensor(resource="cpu", trace=trace, period=5.0)
        sensor.advance_to(3600.0)
        sv = ModalLoadCharacterizer().from_sensor(sensor, 1800.0)
        assert 0.2 < sv.mean < 0.9
        assert sv.spread > 0.05

    def test_from_sensor_without_measurements_rejected(self):
        sensor = Sensor(resource="cpu", trace=Trace.constant(0.5))
        with pytest.raises(RuntimeError):
            ModalLoadCharacterizer().from_sensor(sensor, 100.0)

    def test_from_sensor_invalid_window_rejected(self):
        sensor = Sensor(resource="cpu", trace=Trace.constant(0.5))
        sensor.advance_to(10.0)
        with pytest.raises(ValueError):
            ModalLoadCharacterizer().from_sensor(sensor, 0.0)


class TestServiceIntegration:
    def test_query_modal(self):
        nws = NetworkWeatherService()
        nws.register("cpu", bursty_trace(PLATFORM2_MODES, 3600.0, rng=5))
        nws.advance_to(3600.0)
        sv = nws.query_modal("cpu", 1800.0)
        assert isinstance(sv, StochasticValue)
        assert sv.spread > 0.05

    def test_query_modal_custom_characterizer(self):
        nws = NetworkWeatherService()
        nws.register("cpu", bursty_trace(PLATFORM2_MODES, 3600.0, rng=6))
        nws.advance_to(3600.0)
        lin = nws.query_modal(
            "cpu", 1800.0, characterizer=ModalLoadCharacterizer(ModalCombination.LINEAR)
        )
        mix = nws.query_modal("cpu", 1800.0)
        assert lin.spread < mix.spread
